#include "serve/service_harness.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/algorithm_registry.h"
#include "prediction/dataset.h"
#include "prediction/registry.h"
#include "sim/sharded_dispatcher.h"
#include "util/memory_tracker.h"
#include "util/stopwatch.h"

namespace ftoa {

namespace {

/// Nearest-rank percentile of an unsorted nanosecond sample, in ms.
double PercentileMs(std::vector<int64_t>* sample, double pct) {
  if (sample->empty()) return 0.0;
  const size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sample->size())));
  const size_t index = (rank == 0 ? 0 : rank - 1);
  std::nth_element(sample->begin(),
                   sample->begin() + static_cast<ptrdiff_t>(index),
                   sample->end());
  return static_cast<double>((*sample)[index]) / 1e6;
}

}  // namespace

ServiceHarness::ServiceHarness(LoopedTraceSource source,
                               ServiceOptions options, FaultInjector faults)
    : source_(std::move(source)),
      options_(std::move(options)),
      faults_(std::move(faults)) {
  spd_ = source_.generator().profile().slots_per_day;
  if (options_.analytical_slice > 0) {
    // Analytical isolation: one pool shared by the shard actors and the
    // refresher's bounded slice. Sized like the dispatcher would size its
    // own pool, so sharing changes who owns the workers, not how many
    // serve the shards.
    shared_pool_ = std::make_unique<ThreadPool>(
        ShardedDispatcher::ResolveNumThreads(options_.shard_threads,
                                             options_.num_shards));
    options_.refresh.shared_pool = shared_pool_.get();
    options_.refresh.slice_tokens = options_.analytical_slice;
  }
  refresher_ = std::make_unique<GuideRefresher>(
      source_.generator().profile().velocity, options_.guide,
      options_.refresh, faults_.empty() ? nullptr : &faults_);
  const int num_types = source_.DaySpacetime().num_types();
  day_workers_.assign(num_types, 0);
  day_tasks_.assign(num_types, 0);
}

Result<std::unique_ptr<ServiceHarness>> ServiceHarness::Create(
    const CityProfile& profile, const LoopedTraceSource::Options& trace,
    const ServiceOptions& options) {
  ServiceOptions resolved = options;
  const std::vector<std::string> names = AllAlgorithmNames();
  if (std::find(names.begin(), names.end(), resolved.algorithm) ==
      names.end()) {
    std::string valid;
    for (const std::string& name : names) {
      if (!valid.empty()) valid += ", ";
      valid += name;
    }
    return Status::NotFound("ServiceHarness: unknown algorithm '" +
                            resolved.algorithm + "' (valid: " + valid + ")");
  }
  FTOA_ASSIGN_OR_RETURN(
      FaultInjector faults,
      FaultInjector::Parse(resolved.faults, resolved.fault_seed));
  if (!resolved.refresh_predictor.empty()) {
    // Validate the name eagerly (CreatePredictor's unknown-name error),
    // so a typo fails Create instead of the first day boundary.
    FTOA_RETURN_NOT_OK(CreatePredictor(resolved.refresh_predictor).status());
  }
  resolved.analytical_slice = std::max(0, resolved.analytical_slice);

  resolved.windows_per_segment =
      resolved.windows_per_segment <= 0
          ? profile.slots_per_day
          : std::min(resolved.windows_per_segment, profile.slots_per_day);
  resolved.refresh_period_windows = resolved.refresh_period_windows <= 0
                                        ? profile.slots_per_day
                                        : resolved.refresh_period_windows;
  resolved.num_shards = std::max(1, resolved.num_shards);
  resolved.overload_shed_fraction =
      std::min(1.0, std::max(0.0, resolved.overload_shed_fraction));
  // The guide's type-level deadline test must use the durations the trace
  // actually realizes, not GuideOptions' free-standing defaults.
  resolved.guide.worker_duration = profile.worker_duration;
  resolved.guide.task_duration = profile.task_duration;

  return std::unique_ptr<ServiceHarness>(
      new ServiceHarness(LoopedTraceSource(profile, trace),
                         std::move(resolved), std::move(faults)));
}

Status ServiceHarness::StartDay(int64_t day) {
  FTOA_ASSIGN_OR_RETURN(day_arrivals_, source_.ArrivalsForDay(day));
  day_cursor_ = 0;
  if (day > 0) {
    prev_workers_ = day_workers_;
    prev_tasks_ = day_tasks_;
    have_prev_day_ = true;
    if (!options_.refresh_predictor.empty()) {
      realized_workers_.push_back(day_workers_);
      realized_tasks_.push_back(day_tasks_);
    }
  }
  std::fill(day_workers_.begin(), day_workers_.end(), 0);
  std::fill(day_tasks_.begin(), day_tasks_.end(), 0);
  if (!options_.refresh_predictor.empty()) {
    FTOA_RETURN_NOT_OK(RefitPredictors(day));
  }
  return Status::OK();
}

Status ServiceHarness::RefitPredictors(int64_t day) {
  // Rolling evaluation, exactly like a deployed platform: the dataset is
  // the generator's offline history followed by every completed stream day
  // (day_of_week continues the history's weekday sequence; weather repeats
  // with the looped trace), and the predictors are refitted on all of it.
  // The target day — the one PredictionFor asks about — is the dataset's
  // last, left all-zero: Predictor::Predict may only read strictly earlier
  // history anyway.
  const CityTraceGenerator& generator = source_.generator();
  const int history_days = generator.profile().history_days;
  const int num_cells = source_.DaySpacetime().num_areas();
  const int slots = static_cast<int>(spd_);
  const int completed = static_cast<int>(realized_workers_.size());
  const int target_day = history_days + static_cast<int>(day);

  DemandDataset data(target_day + 1, slots, num_cells);
  const DemandDataset base = generator.GenerateHistory();
  for (int d = 0; d < history_days; ++d) {
    data.set_day_of_week(d, base.day_of_week(d));
    for (int slot = 0; slot < slots; ++slot) {
      data.set_weather(d, slot, base.weather(d, slot));
      for (int cell = 0; cell < num_cells; ++cell) {
        data.set_workers(d, slot, cell, base.workers(d, slot, cell));
        data.set_tasks(d, slot, cell, base.tasks(d, slot, cell));
      }
    }
  }
  for (int d = 0; d < static_cast<int>(day); ++d) {
    const int at = history_days + d;
    data.set_day_of_week(at, at % 7);
    const int source_day = d % source_.loop_days();
    for (int slot = 0; slot < slots; ++slot) {
      data.set_weather(at, slot, generator.WeatherAt(source_day, slot));
      for (int cell = 0; cell < num_cells; ++cell) {
        // TypeId = slot * num_areas + cell — the realized per-type counts
        // flatten exactly like the dataset's (slot, cell) axis.
        const size_t type = static_cast<size_t>(slot) *
                                static_cast<size_t>(num_cells) +
                            static_cast<size_t>(cell);
        if (d < completed) {
          data.set_workers(
              at, slot, cell,
              realized_workers_[static_cast<size_t>(d)][type]);
          data.set_tasks(at, slot, cell,
                         realized_tasks_[static_cast<size_t>(d)][type]);
        }
      }
    }
  }
  data.set_day_of_week(target_day, target_day % 7);
  const int target_source_day = static_cast<int>(day) % source_.loop_days();
  for (int slot = 0; slot < slots; ++slot) {
    data.set_weather(target_day, slot,
                     generator.WeatherAt(target_source_day, slot));
  }

  FTOA_ASSIGN_OR_RETURN(worker_predictor_,
                        CreatePredictor(options_.refresh_predictor));
  FTOA_ASSIGN_OR_RETURN(task_predictor_,
                        CreatePredictor(options_.refresh_predictor));
  FTOA_RETURN_NOT_OK(
      worker_predictor_->Fit(data, target_day, DemandSide::kWorkers));
  FTOA_RETURN_NOT_OK(
      task_predictor_->Fit(data, target_day, DemandSide::kTasks));
  predictor_data_ = std::make_unique<DemandDataset>(std::move(data));
  predictor_target_day_ = target_day;
  return Status::OK();
}

void ServiceHarness::ExpireUpTo(double time, WindowMetrics* metrics) {
  expired_up_to_ = time;
  while (!deadline_heap_.empty() && deadline_heap_.top().first <= time) {
    const int64_t stream_id = deadline_heap_.top().second;
    deadline_heap_.pop();
    auto it = store_.find(stream_id);
    if (it == store_.end()) continue;  // Freed at match time.
    if (!it->second.matched) {
      --live_;
      ++totals_.evictions;
      if (metrics != nullptr) ++metrics->evicted;
      // The safety invariant the property tests pin: a record freed here
      // is never live (its deadline has passed).
      if (it->second.Deadline() > time) ++totals_.evicted_live;
    }
    // The open segment's universe still references the record (an object
    // expiring mid-segment can legitimately match during the replay — it
    // was live at its arrival); free it at rotation instead.
    if (options_.evict_expired) {
      if (segment_.open) {
        deferred_free_.push_back(stream_id);
      } else {
        store_.erase(it);
      }
    }
  }
}

PredictionMatrix ServiceHarness::PredictionFor(int64_t window) const {
  const SpacetimeSpec spacetime = source_.DaySpacetime();
  PredictionMatrix prediction(spacetime);
  if (worker_predictor_ != nullptr) {
    // Learned predictor (satellite of ROADMAP serving item 3): per-slot
    // per-cell forecasts for the dataset's target day, clamped to
    // nonnegative integers (the guide network wants counts).
    const int num_cells = spacetime.num_areas();
    for (int slot = 0; slot < static_cast<int>(spd_); ++slot) {
      const std::vector<double> workers = worker_predictor_->Predict(
          *predictor_data_, predictor_target_day_, slot);
      const std::vector<double> tasks = task_predictor_->Predict(
          *predictor_data_, predictor_target_day_, slot);
      for (int cell = 0; cell < num_cells; ++cell) {
        const TypeId type = spacetime.TypeAt(slot, cell);
        prediction.set_workers_at(
            type, static_cast<int32_t>(std::max<int64_t>(
                      0, std::llround(workers[static_cast<size_t>(cell)]))));
        prediction.set_tasks_at(
            type, static_cast<int32_t>(std::max<int64_t>(
                      0, std::llround(tasks[static_cast<size_t>(cell)]))));
      }
    }
    return prediction;
  }
  if (have_prev_day_) {
    // Yesterday's realized admissions — the live platform's freshest
    // history.
    for (int type = 0; type < spacetime.num_types(); ++type) {
      prediction.set_workers_at(type, prev_workers_[static_cast<size_t>(type)]);
      prediction.set_tasks_at(type, prev_tasks_[static_cast<size_t>(type)]);
    }
    return prediction;
  }
  // Bootstrap before any completed day: the generator's history for the
  // source day this stream day replays — the paper's offline prediction.
  const int source_day =
      static_cast<int>((window / spd_) % source_.loop_days());
  const std::vector<int> workers =
      source_.generator().SampleDayCounts(DemandSide::kWorkers, source_day);
  const std::vector<int> tasks =
      source_.generator().SampleDayCounts(DemandSide::kTasks, source_day);
  for (int type = 0; type < spacetime.num_types(); ++type) {
    prediction.set_workers_at(type, workers[static_cast<size_t>(type)]);
    prediction.set_tasks_at(type, tasks[static_cast<size_t>(type)]);
  }
  return prediction;
}

Status ServiceHarness::HandleRefresh(int64_t window) {
  const bool due = (window % options_.refresh_period_windows) == 0;
  if (options_.background_refresh) {
    const GuideRefresher::PollResult poll = refresher_->Poll();
    if (poll == GuideRefresher::PollResult::kPublished) {
      pending_refresh_report_ = refresher_->last_cycle();
      if (segment_.open) {
        segment_.swaps.emplace_back(window, slot_.Get().guide);
      }
    }
    if (due && !refresher_->busy()) {
      refresher_->StartBackground(PredictionFor(window), window, &slot_);
    }
    return Status::OK();
  }
  if (!due) return Status::OK();
  const Result<GuideSlot::Snapshot> refreshed =
      refresher_->RefreshNow(PredictionFor(window), window, &slot_);
  // A failed cycle is the degradation ladder's input, not the harness's
  // failure: the stale slot (or greedy) carries the stream.
  if (refreshed.ok()) {
    pending_refresh_report_ = refresher_->last_cycle();
    if (segment_.open) {
      segment_.swaps.emplace_back(window, refreshed.value().guide);
    }
  }
  return Status::OK();
}

void ServiceHarness::StartSegment(int64_t window) {
  segment_ = Segment{};
  segment_.open = true;
  segment_.begin = window;
  segment_.day = window / spd_;
  segment_.end = std::min(window + options_.windows_per_segment,
                          (segment_.day + 1) * spd_);
  segment_.admitted.resize(static_cast<size_t>(segment_.end - window));
  segment_.start_guide = slot_.Get();

  const bool needs_guide = AlgorithmNeedsGuide(options_.algorithm);
  const bool no_guide = segment_.start_guide.guide == nullptr;
  const bool too_stale =
      options_.max_guide_age_windows > 0 && !no_guide &&
      window - segment_.start_guide.published_window >
          options_.max_guide_age_windows;
  segment_.degraded = needs_guide && (no_guide || too_stale);

  if (options_.incremental_rotation) {
    // Incremental mode: the carryover lives in the persistent spine;
    // compact it in place instead of rescanning the store.
    CompactSpine(window, segment_.day);
    return;
  }

  // Rebuild reference: every still-live unmatched object from earlier
  // segments, re-offered in stream-id order (deterministic regardless of
  // the store's hash order or eviction mode).
  const double now = static_cast<double>(window);
  // ftoa-lint: ok(no-unordered-iteration): hash order never escapes — the collected ids are sorted below before any consumer sees them
  for (const auto& entry : store_) {
    if (!entry.second.matched && entry.second.Deadline() > now) {
      segment_.carryover.push_back(entry.first);
    }
  }
  std::sort(segment_.carryover.begin(), segment_.carryover.end());
}

void ServiceHarness::CompactSpine(int64_t window, int64_t day) {
  // Equivalence with the rebuild reference (pinned by the rotation tests):
  // the spine holds exactly the previous segment's universe members whose
  // records survived unmatched (ReplaySegment's rebuild step), and every
  // live unmatched record is in some previous segment's universe (admitted
  // objects enter a segment; unmatched survivors chain through carryover).
  // Dropping matched/freed/expired entries here therefore leaves the same
  // object set the store scan + deadline filter would produce — in
  // O(carryover), never O(store).
  const double now = static_cast<double>(window);
  const double day_start = static_cast<double>(day) * source_.day_horizon();
  const bool retime = day != spine_day_;
  size_t kept = 0;
  for (const SpineEntry& entry : spine_) {
    const auto it = store_.find(entry.stream_id);
    if (it == store_.end() || it->second.matched ||
        it->second.Deadline() <= now) {
      continue;
    }
    SpineEntry survivor = entry;
    if (retime) {
      // Recomputed from the record's absolute times — idempotent, so
      // surviving several day boundaries gives the same values the
      // rebuild path derives fresh each segment.
      double rel_start = it->second.abs_start - day_start;
      double duration = it->second.duration;
      if (rel_start < 0.0) {
        duration = it->second.Deadline() - day_start;
        rel_start = 0.0;
      }
      if (duration <= 0.0) continue;
      survivor.rel_time = rel_start;
      survivor.duration = duration;
    }
    spine_[kept++] = survivor;
  }
  spine_.resize(kept);
  if (retime) {
    // Re-timing can reorder (previous-day survivors all collapse to
    // rel_time 0); restore the spine's sort invariant. O(c log c) on the
    // carryover only.
    std::sort(spine_.begin(), spine_.end(),
              [](const SpineEntry& a, const SpineEntry& b) {
                if (a.rel_time != b.rel_time) return a.rel_time < b.rel_time;
                if (a.kind != b.kind) return a.kind == ObjectKind::kWorker;
                return a.stream_id < b.stream_id;
              });
    spine_day_ = day;
  }
}

void ServiceHarness::AdmitWindow(int64_t window) {
  WindowMetrics metrics;
  metrics.window = window;
  metrics.day = window / spd_;
  ExpireUpTo(static_cast<double>(window), &metrics);

  const double window_end = static_cast<double>(window) + 1.0;
  std::vector<StreamArrival> batch;
  while (day_cursor_ < day_arrivals_.size() &&
         day_arrivals_[day_cursor_].time < window_end) {
    batch.push_back(day_arrivals_[day_cursor_]);
    ++day_cursor_;
  }

  // Injected flash crowd: clone the window's batch up to factor * base,
  // cycling over the base arrivals (a crowd bursts where demand already
  // is, so clones keep their template's location and deadline).
  const size_t base = batch.size();
  const double factor = faults_.FlashCrowdFactor(window);
  if (factor > 1.0 && base > 0) {
    const size_t target = static_cast<size_t>(
        std::llround(static_cast<double>(base) * factor));
    for (size_t i = base; i < target; ++i) {
      batch.push_back(batch[i % base]);
      metrics.flash_clones++;
    }
    std::sort(batch.begin(), batch.end(),
              [](const StreamArrival& a, const StreamArrival& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.kind != b.kind) return a.kind == ObjectKind::kWorker;
                return a.source_id < b.source_id;
              });
  }
  metrics.offered = static_cast<int64_t>(batch.size());

  // Admission control: the tightest cap wins; the overflow is shed
  // oldest-deadline-first (the objects closest to expiring buy the least
  // service anyway).
  int64_t allowed = static_cast<int64_t>(batch.size());
  const bool slo_tripped =
      options_.slo_p99_ms > 0.0 && last_known_p99_ms_ > options_.slo_p99_ms;
  if (options_.max_queue_depth > 0) {
    allowed = std::min(allowed, options_.max_queue_depth);
  }
  if (slo_tripped) {
    allowed = std::min(
        allowed, static_cast<int64_t>(std::floor(
                     static_cast<double>(batch.size()) *
                     (1.0 - options_.overload_shed_fraction))));
  }
  if (options_.max_live_objects > 0) {
    allowed = std::min(allowed,
                       std::max<int64_t>(0, options_.max_live_objects - live_));
  }

  std::vector<char> shed_flag(batch.size(), 0);
  const int64_t shed_count = static_cast<int64_t>(batch.size()) - allowed;
  if (shed_count > 0) {
    std::vector<size_t> order(batch.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&batch](size_t a, size_t b) {
      if (batch[a].Deadline() != batch[b].Deadline()) {
        return batch[a].Deadline() < batch[b].Deadline();
      }
      return a < b;
    });
    for (int64_t i = 0; i < shed_count; ++i) shed_flag[order[i]] = 1;
  }

  const SpacetimeSpec day_spacetime = source_.DaySpacetime();
  const double day_start =
      static_cast<double>(metrics.day) * source_.day_horizon();
  std::vector<int64_t>& admitted =
      segment_.admitted[static_cast<size_t>(window - segment_.begin)];
  for (size_t i = 0; i < batch.size(); ++i) {
    if (shed_flag[i]) {
      ++metrics.shed;
      continue;
    }
    const StreamArrival& arrival = batch[i];
    const int64_t stream_id = next_stream_id_++;
    store_.emplace(stream_id,
                   ObjectRecord{arrival.kind, arrival.location, arrival.time,
                                arrival.duration, false});
    deadline_heap_.emplace(arrival.Deadline(), stream_id);
    ++live_;
    admitted.push_back(stream_id);
    ++metrics.admitted;
    const TypeId type =
        day_spacetime.TypeOf(arrival.location, arrival.time - day_start);
    if (arrival.kind == ObjectKind::kWorker) {
      ++day_workers_[static_cast<size_t>(type)];
    } else {
      ++day_tasks_[static_cast<size_t>(type)];
    }
  }

  metrics.overloaded = slo_tripped || metrics.shed > 0;
  metrics.live_objects = live_;
  metrics.live_bytes = memory_tracker::LiveBytes();
  const GuideSlot::Snapshot snapshot = slot_.Get();
  metrics.guide_epoch = snapshot.epoch;
  metrics.guide_age_windows =
      snapshot.guide == nullptr ? -1 : window - snapshot.published_window;
  metrics.refresh_failures = refresher_->stats().failed_cycles;
  metrics.degraded_greedy = segment_.degraded;
  if (pending_refresh_report_.has_value()) {
    const GuideRefresher::CycleReport& report = *pending_refresh_report_;
    metrics.refresh_ms = report.solve_ms;
    metrics.refresh_warm = report.refresh.warm;
    metrics.refresh_components_total = report.refresh.components_total;
    metrics.refresh_components_reused = report.refresh.components_reused;
    (report.refresh.warm ? totals_.warm_refreshes : totals_.cold_refreshes)++;
    totals_.refresh_components_reused += report.refresh.components_reused;
    totals_.refresh_components_solved += report.refresh.components_solved;
    totals_.refresh_ms += report.solve_ms;
    pending_refresh_report_.reset();
  }

  totals_.windows++;
  totals_.offered += metrics.offered;
  totals_.admitted += metrics.admitted;
  totals_.shed += metrics.shed;
  totals_.store_peak =
      std::max(totals_.store_peak, static_cast<int64_t>(store_.size()));
  windows_.push_back(metrics);
}

Status ServiceHarness::ReplaySegment() {
  Segment segment = std::move(segment_);
  segment_ = Segment{};
  ++totals_.segments;
  const double day_start =
      static_cast<double>(segment.day) * source_.day_horizon();

  // The segment universe: the carryover plus this segment's admissions,
  // all on the day-relative axis the guide's spacetime discretizes, in
  // session arrival order — nondecreasing time, workers before tasks at
  // ties, lower ids first. Local ids are assigned in this order, so the id
  // tie-break and the stream-id tie-break agree.
  const auto arrival_order = [](const SpineEntry& a, const SpineEntry& b) {
    if (a.rel_time != b.rel_time) return a.rel_time < b.rel_time;
    if (a.kind != b.kind) return a.kind == ObjectKind::kWorker;
    return a.stream_id < b.stream_id;
  };
  // This segment's admissions are already in arrival order by
  // construction: each window's batch is fed in (time, kind, source) order
  // and stream ids are handed out along it, windows never interleave times.
  std::vector<SpineEntry> fresh;
  for (size_t offset = 0; offset < segment.admitted.size(); ++offset) {
    for (const int64_t stream_id : segment.admitted[offset]) {
      const ObjectRecord& record = store_.at(stream_id);
      fresh.push_back(SpineEntry{
          stream_id, record.kind, record.abs_start - day_start,
          record.duration, record.location,
          segment.begin + static_cast<int64_t>(offset)});
    }
  }
  std::vector<SpineEntry> objects;
  if (options_.incremental_rotation) {
    // Incremental rotation: the spine is the compacted, sorted carryover
    // (CompactSpine ran at StartSegment); stamp its latency-attribution
    // window and merge with the sorted admissions — O(carryover + new),
    // replacing the rebuild's full re-sort.
    for (SpineEntry& entry : spine_) entry.window = segment.begin;
    objects.resize(spine_.size() + fresh.size());
    std::merge(spine_.begin(), spine_.end(), fresh.begin(), fresh.end(),
               objects.begin(), arrival_order);
  } else {
    // Rebuild reference: derive the carryover from the store records and
    // sort the whole universe.
    objects.reserve(segment.carryover.size() + fresh.size());
    for (const int64_t stream_id : segment.carryover) {
      const ObjectRecord& record = store_.at(stream_id);
      // A previous-day survivor re-enters at the day boundary with its
      // remaining patience; same-day carryover keeps its true start.
      double rel_start = record.abs_start - day_start;
      double duration = record.duration;
      if (rel_start < 0.0) {
        duration = (record.Deadline() - day_start);
        rel_start = 0.0;
      }
      if (duration <= 0.0) continue;
      objects.push_back(SpineEntry{stream_id, record.kind, rel_start,
                                   duration, record.location,
                                   segment.begin});
    }
    objects.insert(objects.end(), fresh.begin(), fresh.end());
    std::sort(objects.begin(), objects.end(), arrival_order);
  }

  std::vector<Worker> workers;
  std::vector<Task> tasks;
  std::vector<int64_t> worker_stream, task_stream;
  std::vector<int32_t> local_id(objects.size(), -1);
  for (size_t i = 0; i < objects.size(); ++i) {
    const SpineEntry& object = objects[i];
    if (object.kind == ObjectKind::kWorker) {
      local_id[i] = static_cast<int32_t>(workers.size());
      workers.push_back(Worker{-1, object.location, object.rel_time,
                               object.duration});
      worker_stream.push_back(object.stream_id);
    } else {
      local_id[i] = static_cast<int32_t>(tasks.size());
      tasks.push_back(
          Task{-1, object.location, object.rel_time, object.duration});
      task_stream.push_back(object.stream_id);
    }
  }
  const Instance instance(source_.DaySpacetime(),
                          source_.generator().profile().velocity,
                          std::move(workers), std::move(tasks));

  // Ladder rung for this segment, fixed at its start: fresh/stale guide,
  // or guide-free greedy.
  AlgorithmDeps deps;
  deps.guide = segment.start_guide.guide;
  deps.retrieval = options_.retrieval;
  const std::string name =
      segment.degraded ? "simple-greedy" : options_.algorithm;
  FTOA_ASSIGN_OR_RETURN(std::unique_ptr<OnlineAlgorithm> algorithm,
                        CreateAlgorithm(name, deps));
  ShardedOptions sharded;
  sharded.num_shards = options_.num_shards;
  sharded.num_threads = options_.shard_threads;
  sharded.reconcile = options_.reconcile;
  // Analytical isolation: shard drains share the harness pool with the
  // refresher's bounded slice instead of a dispatcher-owned pool.
  sharded.external_pool = shared_pool_.get();
  ShardedDispatcher dispatcher(algorithm.get(), sharded);
  std::unique_ptr<ShardedSession> session = dispatcher.StartSession(instance);
  session->set_collect_dispatches(false);

  // Replay with AdvanceTo at every window boundary; mid-segment guide
  // publishes hot-swap at their boundary; injected handoff drops skip
  // whole (window, lane) batches; latency is measured per fed event.
  size_t cursor = 0;
  size_t swap_cursor = 0;
  std::vector<char> lane_dropped(static_cast<size_t>(options_.num_shards), 0);
  std::vector<std::vector<int64_t>> latency_ns(
      static_cast<size_t>(segment.end - segment.begin));
  Stopwatch stopwatch;
  const auto feed_until = [&](double rel_bound, int64_t window) {
    const size_t metrics_index = static_cast<size_t>(window - segment.begin);
    for (; cursor < objects.size() && objects[cursor].rel_time < rel_bound;
         ++cursor) {
      const SpineEntry& object = objects[cursor];
      // The fault lane is the shard that would really receive the event —
      // the session router's assignment over the session-local id — so an
      // injected drop-batch fault hits one actual shard's handoff, not a
      // synthetic stream-id stripe.
      const int lane = session->router().Route(object.kind, local_id[cursor],
                                               object.location);
      if (lane_dropped[static_cast<size_t>(lane)]) {
        ++windows_[static_cast<size_t>(window)].dropped_arrivals;
        ++totals_.dropped_arrivals;
        continue;
      }
      stopwatch.Restart();
      if (object.kind == ObjectKind::kWorker) {
        session->OnWorker(local_id[cursor], object.rel_time);
      } else {
        session->OnTask(local_id[cursor], object.rel_time);
      }
      const double stall_ms = faults_.SlowShardStallMs(window, lane);
      latency_ns[metrics_index].push_back(
          stopwatch.ElapsedNanos() +
          static_cast<int64_t>(stall_ms * 1e6));
    }
  };

  for (int64_t window = segment.begin; window < segment.end; ++window) {
    const double rel_start = static_cast<double>(window % spd_);
    if (window == segment.begin) feed_until(rel_start, window);
    session->AdvanceTo(rel_start);
    while (swap_cursor < segment.swaps.size() &&
           segment.swaps[swap_cursor].first <= window) {
      session->SwapGuide(segment.swaps[swap_cursor].second);
      ++swap_cursor;
    }
    for (int lane = 0; lane < options_.num_shards; ++lane) {
      lane_dropped[static_cast<size_t>(lane)] =
          faults_.ShouldDropHandoffBatch(window, lane) ? 1 : 0;
    }
    feed_until(rel_start + 1.0, window);
  }

  FTOA_ASSIGN_OR_RETURN(ShardedRunResult result, session->Finish());
  totals_.guide_swaps += result.metrics.guide_swaps;

  // Fold the segment's outcome back: committed pairs to stream ids, the
  // store's matched flags (with live accounting against the expiry
  // horizon), and the per-window latency report.
  const int64_t rotation_window = segment.end - 1;
  for (const MatchedPair& pair : result.assignment.pairs()) {
    const int64_t worker_id = worker_stream[static_cast<size_t>(pair.worker)];
    const int64_t task_id = task_stream[static_cast<size_t>(pair.task)];
    matched_pairs_.emplace_back(worker_id, task_id);
    for (const int64_t stream_id : {worker_id, task_id}) {
      auto it = store_.find(stream_id);
      if (it == store_.end() || it->second.matched) continue;
      it->second.matched = true;
      if (it->second.Deadline() > expired_up_to_) --live_;
      if (options_.evict_expired) store_.erase(it);
    }
  }
  totals_.matched += static_cast<int64_t>(result.assignment.size());
  windows_[static_cast<size_t>(rotation_window)].matched +=
      static_cast<int64_t>(result.assignment.size());
  {
    // Retrieval instrumentation of the rotated segment (merged across its
    // shard sessions by the dispatcher's trace fold).
    const RetrievalStats& retrieval = result.trace.retrieval;
    WindowMetrics& rotated = windows_[static_cast<size_t>(rotation_window)];
    rotated.retrieval_queries += retrieval.queries;
    rotated.candidates_examined += retrieval.candidates_examined;
    rotated.cells_visited_p50 = retrieval.CellsVisitedPercentile(0.50);
    rotated.cells_visited_p99 = retrieval.CellsVisitedPercentile(0.99);
  }

  for (int64_t window = segment.begin; window < segment.end; ++window) {
    WindowMetrics& metrics = windows_[static_cast<size_t>(window)];
    std::vector<int64_t>& sample =
        latency_ns[static_cast<size_t>(window - segment.begin)];
    metrics.decisions = static_cast<int64_t>(sample.size());
    metrics.p50_ms = PercentileMs(&sample, 50.0);
    metrics.p99_ms = PercentileMs(&sample, 99.0);
    if (!sample.empty()) {
      metrics.max_ms = static_cast<double>(
                           *std::max_element(sample.begin(), sample.end())) /
                       1e6;
    }
    last_known_p99_ms_ = metrics.p99_ms;
  }

  // Rotation is the eviction point: free the records that expired during
  // the segment (those the fold matched are already gone).
  if (options_.evict_expired) {
    for (const int64_t stream_id : deferred_free_) store_.erase(stream_id);
  }
  deferred_free_.clear();

  if (options_.incremental_rotation) {
    // The next spine: this segment's universe members whose records
    // survived unmatched, in the order they already hold (filtering a
    // sorted list preserves its order). O(carryover + new) — the store is
    // never scanned. Entries whose deadline has passed but whose record
    // survives (evict off) ride along and are dropped by the next
    // CompactSpine, exactly like the rebuild's deadline filter would.
    spine_.clear();
    for (const SpineEntry& object : objects) {
      const auto it = store_.find(object.stream_id);
      if (it == store_.end() || it->second.matched) continue;
      spine_.push_back(object);
    }
    spine_day_ = segment.day;
  }
  return Status::OK();
}

Status ServiceHarness::RunWindows(int64_t count) {
  for (int64_t i = 0; i < count; ++i) {
    const int64_t window = next_window_;
    ++next_window_;
    if (window % spd_ == 0) FTOA_RETURN_NOT_OK(StartDay(window / spd_));
    FTOA_RETURN_NOT_OK(HandleRefresh(window));
    if (!segment_.open) StartSegment(window);
    AdmitWindow(window);
    if (window + 1 == segment_.end) FTOA_RETURN_NOT_OK(ReplaySegment());
  }
  if (segment_.open) {
    // Rotate the partial segment so every emitted window reports complete
    // metrics (the next RunWindows starts a fresh segment).
    segment_.end = next_window_;
    segment_.admitted.resize(static_cast<size_t>(segment_.end -
                                                 segment_.begin));
    FTOA_RETURN_NOT_OK(ReplaySegment());
  }
  return Status::OK();
}

}  // namespace ftoa
