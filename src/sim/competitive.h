// Empirical competitive-ratio estimation under the i.i.d. input model
// (Definition 5): given the spatiotemporal distributions D_W / D_R induced
// by a prediction matrix, sample many arrival sequences, run an online
// algorithm and the offline optimum on each, and report the worst and mean
// ratio MaxSum(M) / MaxSum(OPT). This is the experimental counterpart of
// Theorems 1-2 (POLAR >= (1 - 1/e)^2 ~ 0.4, POLAR-OP ~ 0.47, both with
// high probability) — see bench_competitive_ratio.

#ifndef FTOA_SIM_COMPETITIVE_H_
#define FTOA_SIM_COMPETITIVE_H_

#include <functional>
#include <memory>

#include "core/online_algorithm.h"
#include "core/prediction_matrix.h"
#include "util/distributions.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ftoa {

/// Samples FTOA instances from the i.i.d. model of Definition 5: worker
/// (task) types are drawn from Pr_a[i][j] = a_ij / m (Pr_b = b_ij / n),
/// with m (n) trials; each object lands uniformly within its type's slot
/// and cell.
///
/// The per-type alias tables are built once here, so Sample is O(m + n)
/// with O(1) per draw; a const sampler is safe to share across threads
/// (Sample touches only the caller's rng).
class IidInstanceSampler {
 public:
  /// `worker_duration` / `task_duration` are the global Dw / Dr of the
  /// sampled objects.
  IidInstanceSampler(PredictionMatrix prediction, double velocity,
                     double worker_duration, double task_duration);

  /// Draws one instance (deterministic in the rng state).
  Instance Sample(Rng* rng) const;

  const PredictionMatrix& prediction() const { return prediction_; }

 private:
  PredictionMatrix prediction_;
  DiscreteDistribution worker_types_;  // Alias tables over the prediction,
  DiscreteDistribution task_types_;    // built once in the constructor.
  double velocity_;
  double worker_duration_;
  double task_duration_;
};

/// Aggregate of the per-trial ratios.
struct CompetitiveEstimate {
  double min_ratio = 1.0;   ///< The empirical competitive ratio.
  double mean_ratio = 0.0;
  int trials = 0;
  int degenerate_trials = 0;  ///< Trials with OPT = 0 (excluded).
};

/// Runs `trials` sampled instances through `algorithm` and the offline
/// optimum. `algorithm_factory` receives nothing and returns a fresh,
/// caller-owned algorithm per trial (ownership transfers here; the object
/// is destroyed when its trial ends, so no per-trial state leaks across
/// trials — or processes outlive their run).
///
/// With `num_threads` > 1 the trials are partitioned into one contiguous
/// chunk per thread; every trial forks its own RNG stream from `seed`, so
/// the estimate is bit-identical for every thread count. The factory is
/// then invoked concurrently and must be thread-safe (returning a fresh
/// algorithm over shared immutable state — e.g. a shared_ptr'd guide — is
/// fine). `pool` optionally supplies the worker threads, letting repeat
/// callers (benches, sweeps) amortize thread spawn/join across calls;
/// when null, a pool local to the call is created.
Result<CompetitiveEstimate> EstimateCompetitiveRatio(
    const IidInstanceSampler& sampler,
    const std::function<std::unique_ptr<OnlineAlgorithm>()>&
        algorithm_factory,
    int trials, uint64_t seed, int num_threads = 1,
    ThreadPool* pool = nullptr);

}  // namespace ftoa

#endif  // FTOA_SIM_COMPETITIVE_H_
