#include "sim/boundary_reconciler.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "flow/dynamic_matching.h"
#include "model/feasibility.h"
#include "retrieval/candidate_engine.h"

namespace ftoa {

Result<ReconcileStats> ReconcileShardBoundary(const Instance& instance,
                                              const ShardRouter& router,
                                              const ReconcileOptions& options,
                                              Assignment* assignment) {
  ReconcileStats stats;
  if (router.num_shards() <= 1) return stats;  // No border exists.
  if (options.max_candidates_per_worker < 1) {
    return Status::InvalidArgument(
        "ReconcileOptions::max_candidates_per_worker must be >= 1");
  }

  const double velocity = instance.velocity();
  const double max_task_duration = instance.MaxTaskDuration();
  const double radius = MaxFeasibleDistance(
      max_task_duration, instance.MaxWorkerDuration(), velocity);

  // The objects the partition may have cost a match: unmatched and within
  // the feasibility radius of another shard's territory.
  std::vector<WorkerId> workers;
  std::vector<int> worker_shard;
  for (const Worker& w : instance.workers()) {
    if (assignment->IsWorkerMatched(w.id)) continue;
    if (!router.NearShardBoundary(w.location, radius)) continue;
    workers.push_back(w.id);
    worker_shard.push_back(
        router.Route(ObjectKind::kWorker, w.id, w.location));
  }
  // Boundary tasks in a CandidateStore: the engine's top-k query walks
  // cells nearest-first and binary-searches each bucket's arrival-time
  // window, so a worker only ever touches tasks that could pass the
  // deadline predicate — the same cell walk every per-arrival scan uses.
  CandidateStore store(instance.spacetime().grid());
  std::vector<int> task_shard_of_id(instance.num_tasks(), -1);
  std::vector<int32_t> right_of_task(instance.num_tasks(), -1);
  int64_t num_tasks = 0;
  for (const Task& r : instance.tasks()) {
    if (assignment->IsTaskMatched(r.id)) continue;
    if (!router.NearShardBoundary(r.location, radius)) continue;
    store.Insert(RetrievalCandidate{r.id, r.location, r.start, r.Deadline()});
    task_shard_of_id[static_cast<size_t>(r.id)] =
        router.Route(ObjectKind::kTask, r.id, r.location);
    right_of_task[static_cast<size_t>(r.id)] =
        static_cast<int32_t>(num_tasks);
    ++num_tasks;
  }
  stats.boundary_workers = static_cast<int64_t>(workers.size());
  stats.boundary_tasks = num_tasks;
  if (workers.empty() || num_tasks == 0) return stats;
  // right_of_task indexes tasks in id order; invert it for the commit loop.
  std::vector<TaskId> task_of_right(static_cast<size_t>(num_tasks), -1);
  for (TaskId id = 0; id < static_cast<TaskId>(instance.num_tasks());
       ++id) {
    const int32_t right = right_of_task[static_cast<size_t>(id)];
    if (right >= 0) task_of_right[static_cast<size_t>(right)] = id;
  }

  // Guide capacity: remaining additions allowed per (worker type, task
  // type). Empty map = unguided = uncapped.
  std::unordered_map<int64_t, int32_t> capacity;
  if (options.guide != nullptr) {
    capacity = options.guide->MatchedPairCountsByTypePair();
  }
  const SpacetimeSpec* guide_st =
      options.guide != nullptr ? &options.guide->spacetime() : nullptr;

  DynamicBipartiteMatcher matcher;
  matcher.ReserveNodes(workers.size(), static_cast<size_t>(num_tasks));
  matcher.ReserveEdges(workers.size() *
                       static_cast<size_t>(options.max_candidates_per_worker));
  for (size_t i = 0; i < workers.size(); ++i) matcher.AddLeft();
  for (int64_t j = 0; j < num_tasks; ++j) matcher.AddRight();

  // One augmentation per boundary worker, in worker id order, over the
  // worker's nearest feasible cross-shard candidates. The engine's TopK is
  // canonical (distance, id), so the kept edges — and hence the recovered
  // matching — are independent of scan order.
  CandidateCursor cursor(&store, &stats.retrieval);
  for (size_t i = 0; i < workers.size(); ++i) {
    const Worker& w = instance.worker(workers[i]);
    const int shard = worker_shard[i];
    const TypeId worker_type =
        guide_st != nullptr ? guide_st->TypeOf(w.location, w.start) : -1;
    // Arrival-time window implied by the deadline predicate (either
    // policy): Sr < Sw + Dw, and the travel-time condition forces
    // Sr >= Sw - Dr. A superset window; CanServe stays the authority.
    // Querying at w.start is safe: a task gone before the worker even
    // starts cannot be served under either policy.
    const auto& candidates = cursor.TopK(
        w.location, radius,
        static_cast<size_t>(options.max_candidates_per_worker), w.start,
        StartWindow{w.start - max_task_duration, w.start + w.duration},
        [&](const RetrievalCandidate& entry, double) {
          if (task_shard_of_id[static_cast<size_t>(entry.id)] == shard) {
            return false;
          }
          const Task& r = instance.task(static_cast<TaskId>(entry.id));
          if (!CanServe(w, r, velocity, options.policy)) return false;
          if (guide_st != nullptr) {
            const TypeId task_type = guide_st->TypeOf(r.location, r.start);
            const auto cap = capacity.find(
                options.guide->TypePairKey(worker_type, task_type));
            if (cap == capacity.end() || cap->second <= 0) return false;
          }
          return true;
        });
    for (const ScoredCandidate& c : candidates) {
      matcher.AddEdge(
          static_cast<int32_t>(i),
          right_of_task[static_cast<size_t>(c.candidate.id)]);
    }
    matcher.TryAugmentLeft(static_cast<int32_t>(i));
  }

  // Commit in worker id order, consuming guide capacity as the shards do.
  for (size_t i = 0; i < workers.size(); ++i) {
    const int32_t right = matcher.MatchOfLeft(static_cast<int32_t>(i));
    if (right < 0) continue;
    const Worker& w = instance.worker(workers[i]);
    const Task& r =
        instance.task(task_of_right[static_cast<size_t>(right)]);
    if (guide_st != nullptr) {
      const int64_t key = options.guide->TypePairKey(
          guide_st->TypeOf(w.location, w.start),
          guide_st->TypeOf(r.location, r.start));
      int32_t& remaining = capacity[key];
      if (remaining <= 0) {
        ++stats.capacity_dropped;
        continue;
      }
      --remaining;
    }
    FTOA_RETURN_NOT_OK(
        assignment->Add(w.id, r.id, std::max(w.start, r.start)));
    ++stats.recovered_pairs;
  }
  return stats;
}

}  // namespace ftoa
