#include "sim/boundary_reconciler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "flow/dynamic_matching.h"
#include "model/feasibility.h"

namespace ftoa {

namespace {

/// One candidate cross-shard partner of a boundary worker.
struct Candidate {
  double distance = 0.0;
  TaskId task = -1;
};

/// Keeps the k best candidates by (distance, task id) — the deterministic
/// nearest-first order, independent of scan order.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { items_.reserve(k + 1); }

  void Offer(Candidate c) {
    const auto less = [](const Candidate& a, const Candidate& b) {
      return a.distance < b.distance ||
             (a.distance == b.distance && a.task < b.task);
    };
    if (items_.size() == k_ && !less(c, items_.back())) return;
    items_.insert(std::upper_bound(items_.begin(), items_.end(), c, less),
                  c);
    if (items_.size() > k_) items_.pop_back();
  }

  void Clear() { items_.clear(); }
  bool full() const { return items_.size() == k_; }
  double worst_distance() const { return items_.back().distance; }
  const std::vector<Candidate>& items() const { return items_; }

 private:
  size_t k_;
  std::vector<Candidate> items_;
};

/// Smallest distance between any two points of cells `a` and `b`
/// (rectangle-to-rectangle). A valid lower bound on the distance from any
/// object in `a` to any object in `b`, which makes the best-first cell
/// walk below terminate without missing a nearer candidate.
double CellRectDistance(const GridSpec& grid, CellId a, CellId b) {
  const double cw = grid.cell_width();
  const double ch = grid.cell_height();
  const double ax = grid.CellX(a) * cw;
  const double ay = grid.CellY(a) * ch;
  const double bx = grid.CellX(b) * cw;
  const double by = grid.CellY(b) * ch;
  const double dx = std::max({0.0, bx - (ax + cw), ax - (bx + cw)});
  const double dy = std::max({0.0, by - (ay + ch), ay - (by + ch)});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

Result<ReconcileStats> ReconcileShardBoundary(const Instance& instance,
                                              const ShardRouter& router,
                                              const ReconcileOptions& options,
                                              Assignment* assignment) {
  ReconcileStats stats;
  if (router.num_shards() <= 1) return stats;  // No border exists.
  if (options.max_candidates_per_worker < 1) {
    return Status::InvalidArgument(
        "ReconcileOptions::max_candidates_per_worker must be >= 1");
  }

  const double velocity = instance.velocity();
  const double max_task_duration = instance.MaxTaskDuration();
  const double radius = MaxFeasibleDistance(
      max_task_duration, instance.MaxWorkerDuration(), velocity);

  // The objects the partition may have cost a match: unmatched and within
  // the feasibility radius of another shard's territory.
  std::vector<WorkerId> workers;
  std::vector<int> worker_shard;
  for (const Worker& w : instance.workers()) {
    if (assignment->IsWorkerMatched(w.id)) continue;
    if (!router.NearShardBoundary(w.location, radius)) continue;
    workers.push_back(w.id);
    worker_shard.push_back(
        router.Route(ObjectKind::kWorker, w.id, w.location));
  }
  const GridSpec& grid = instance.spacetime().grid();
  // Boundary tasks bucketed per grid cell and sorted by (start, id): the
  // candidate scan walks cells nearest-first and binary-searches each
  // cell's arrival-time window, so a worker only ever touches tasks that
  // could pass the deadline predicate.
  std::vector<std::vector<std::pair<double, TaskId>>> cell_tasks(
      static_cast<size_t>(grid.num_cells()));
  std::vector<int> task_shard_of_id(instance.num_tasks(), -1);
  std::vector<int32_t> right_of_task(instance.num_tasks(), -1);
  int64_t num_tasks = 0;
  for (const Task& r : instance.tasks()) {
    if (assignment->IsTaskMatched(r.id)) continue;
    if (!router.NearShardBoundary(r.location, radius)) continue;
    cell_tasks[static_cast<size_t>(grid.CellOf(r.location))].emplace_back(
        r.start, r.id);
    task_shard_of_id[static_cast<size_t>(r.id)] =
        router.Route(ObjectKind::kTask, r.id, r.location);
    right_of_task[static_cast<size_t>(r.id)] =
        static_cast<int32_t>(num_tasks);
    ++num_tasks;
  }
  for (auto& bucket : cell_tasks) std::sort(bucket.begin(), bucket.end());
  stats.boundary_workers = static_cast<int64_t>(workers.size());
  stats.boundary_tasks = num_tasks;
  if (workers.empty() || num_tasks == 0) return stats;
  // right_of_task indexes tasks in id order; invert it for the commit loop.
  std::vector<TaskId> task_of_right(static_cast<size_t>(num_tasks), -1);
  for (TaskId id = 0; id < static_cast<TaskId>(instance.num_tasks());
       ++id) {
    const int32_t right = right_of_task[static_cast<size_t>(id)];
    if (right >= 0) task_of_right[static_cast<size_t>(right)] = id;
  }

  // Guide capacity: remaining additions allowed per (worker type, task
  // type). Empty map = unguided = uncapped.
  std::unordered_map<int64_t, int32_t> capacity;
  if (options.guide != nullptr) {
    capacity = options.guide->MatchedPairCountsByTypePair();
  }
  const SpacetimeSpec* guide_st =
      options.guide != nullptr ? &options.guide->spacetime() : nullptr;

  // Cell visit order for the best-first walk, per origin cell and built
  // lazily: cells holding at least one boundary task, within the
  // feasibility radius, sorted by (rectangle distance, id). Workers in one
  // cell share the order (which may legitimately be empty — the built flag
  // keeps that case cached too).
  std::vector<std::vector<std::pair<double, CellId>>> visit_orders(
      static_cast<size_t>(grid.num_cells()));
  std::vector<uint8_t> visit_order_built(
      static_cast<size_t>(grid.num_cells()), 0);
  const auto visit_order_of =
      [&](CellId origin) -> const std::vector<std::pair<double, CellId>>& {
    auto& order = visit_orders[static_cast<size_t>(origin)];
    if (!visit_order_built[static_cast<size_t>(origin)]) {
      visit_order_built[static_cast<size_t>(origin)] = 1;
      for (CellId c = 0; c < grid.num_cells(); ++c) {
        if (cell_tasks[static_cast<size_t>(c)].empty()) continue;
        const double bound = CellRectDistance(grid, origin, c);
        if (bound > radius) continue;
        order.emplace_back(bound, c);
      }
      std::sort(order.begin(), order.end());
    }
    return order;
  };

  DynamicBipartiteMatcher matcher;
  matcher.ReserveNodes(workers.size(), static_cast<size_t>(num_tasks));
  matcher.ReserveEdges(workers.size() *
                       static_cast<size_t>(options.max_candidates_per_worker));
  for (size_t i = 0; i < workers.size(); ++i) matcher.AddLeft();
  for (int64_t j = 0; j < num_tasks; ++j) matcher.AddRight();

  // One augmentation per boundary worker, in worker id order, over the
  // worker's nearest feasible cross-shard candidates. The cell walk stops
  // as soon as no unvisited cell can hold a better candidate than the k
  // already found.
  TopK candidates(static_cast<size_t>(options.max_candidates_per_worker));
  for (size_t i = 0; i < workers.size(); ++i) {
    const Worker& w = instance.worker(workers[i]);
    const int shard = worker_shard[i];
    const TypeId worker_type =
        guide_st != nullptr ? guide_st->TypeOf(w.location, w.start) : -1;
    // Arrival-time window implied by the deadline predicate (either
    // policy): Sr < Sw + Dw, and the travel-time condition forces
    // Sr >= Sw - Dr. A superset window; CanServe stays the authority.
    const double window_lo = w.start - max_task_duration;
    const double window_hi = w.start + w.duration;
    candidates.Clear();
    for (const auto& [bound, cell] : visit_order_of(grid.CellOf(w.location))) {
      if (candidates.full() && bound > candidates.worst_distance()) break;
      const auto& bucket = cell_tasks[static_cast<size_t>(cell)];
      for (auto it = std::lower_bound(
               bucket.begin(), bucket.end(),
               std::make_pair(window_lo,
                              std::numeric_limits<TaskId>::min()));
           it != bucket.end() && it->first <= window_hi; ++it) {
        const TaskId task_id = it->second;
        if (task_shard_of_id[static_cast<size_t>(task_id)] == shard) {
          continue;
        }
        const Task& r = instance.task(task_id);
        if (!CanServe(w, r, velocity, options.policy)) continue;
        if (guide_st != nullptr) {
          const TypeId task_type = guide_st->TypeOf(r.location, r.start);
          const auto cap = capacity.find(
              options.guide->TypePairKey(worker_type, task_type));
          if (cap == capacity.end() || cap->second <= 0) continue;
        }
        candidates.Offer(
            Candidate{Distance(w.location, r.location), task_id});
      }
    }
    for (const Candidate& c : candidates.items()) {
      matcher.AddEdge(static_cast<int32_t>(i),
                      right_of_task[static_cast<size_t>(c.task)]);
    }
    matcher.TryAugmentLeft(static_cast<int32_t>(i));
  }

  // Commit in worker id order, consuming guide capacity as the shards do.
  for (size_t i = 0; i < workers.size(); ++i) {
    const int32_t right = matcher.MatchOfLeft(static_cast<int32_t>(i));
    if (right < 0) continue;
    const Worker& w = instance.worker(workers[i]);
    const Task& r =
        instance.task(task_of_right[static_cast<size_t>(right)]);
    if (guide_st != nullptr) {
      const int64_t key = options.guide->TypePairKey(
          guide_st->TypeOf(w.location, w.start),
          guide_st->TypeOf(r.location, r.start));
      int32_t& remaining = capacity[key];
      if (remaining <= 0) {
        ++stats.capacity_dropped;
        continue;
      }
      --remaining;
    }
    FTOA_RETURN_NOT_OK(
        assignment->Add(w.id, r.id, std::max(w.start, r.start)));
    ++stats.recovered_pairs;
  }
  return stats;
}

}  // namespace ftoa
