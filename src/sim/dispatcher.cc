#include "sim/dispatcher.h"

namespace ftoa {

Dispatcher::Dispatcher(const Instance& instance, const RunTrace& trace)
    : instance_(&instance),
      plans_(instance.num_workers()) {
  for (const DispatchRecord& record : trace.dispatches) {
    MovementPlan& plan = plans_[static_cast<size_t>(record.worker)];
    plan.active = true;
    plan.origin = instance.worker(record.worker).location;
    plan.target = record.target;
    plan.depart_time = record.time;
  }
}

Point Dispatcher::PositionAt(WorkerId worker, double t) const {
  const MovementPlan& plan = plans_[static_cast<size_t>(worker)];
  const Worker& w = instance_->worker(worker);
  if (!plan.active || t <= plan.depart_time) return w.location;
  const double total = Distance(plan.origin, plan.target);
  if (total <= 0.0) return plan.target;
  const double traveled = (t - plan.depart_time) * instance_->velocity();
  return Lerp(plan.origin, plan.target, traveled / total);
}

}  // namespace ftoa
