#include "sim/dispatcher.h"

#include <cstdio>
#include <cstdlib>

namespace ftoa {

Dispatcher::Dispatcher(const Instance& instance, const RunTrace& trace)
    : instance_(&instance),
      plans_(instance.num_workers()) {
  for (const DispatchRecord& record : trace.dispatches) {
    if (record.worker < 0 ||
        static_cast<size_t>(record.worker) >= plans_.size()) {
      std::fprintf(stderr,
                   "Dispatcher: dispatch record for worker %d outside the "
                   "instance's %zu workers\n",
                   record.worker, plans_.size());
      std::abort();
    }
    MovementPlan& plan = plans_[static_cast<size_t>(record.worker)];
    plan.active = true;
    plan.origin = instance.worker(record.worker).location;
    plan.target = record.target;
    plan.depart_time = record.time;
  }
}

const Dispatcher::MovementPlan& Dispatcher::PlanOf(WorkerId worker) const {
  if (worker < 0 || static_cast<size_t>(worker) >= plans_.size()) {
    std::fprintf(stderr,
                 "Dispatcher: worker id %d out of range [0, %zu)\n", worker,
                 plans_.size());
    std::abort();
  }
  return plans_[static_cast<size_t>(worker)];
}

Point Dispatcher::PositionAt(WorkerId worker, double t) const {
  const MovementPlan& plan = PlanOf(worker);
  const Worker& w = instance_->worker(worker);
  if (!plan.active || t <= plan.depart_time) return w.location;
  const double total = Distance(plan.origin, plan.target);
  if (total <= 0.0) return plan.target;
  const double traveled = (t - plan.depart_time) * instance_->velocity();
  return Lerp(plan.origin, plan.target, traveled / total);
}

}  // namespace ftoa
