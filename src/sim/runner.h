// Measured execution of one algorithm over one instance: wall time, peak
// heap growth, matching size, optional structural validation, and optional
// strict re-verification. All benches and examples go through this runner
// so the three axes of the paper's figures are collected uniformly.

#ifndef FTOA_SIM_RUNNER_H_
#define FTOA_SIM_RUNNER_H_

#include "core/online_algorithm.h"
#include "model/instance.h"
#include "sim/metrics.h"
#include "sim/shard_router.h"
#include "util/result.h"

namespace ftoa {

/// Runner configuration.
struct RunnerOptions {
  /// Validate every pair against this policy after the run; set to
  /// kDispatchAtAssignmentTime for wait-in-place baselines.
  bool validate = false;
  FeasibilityPolicy validation_policy =
      FeasibilityPolicy::kDispatchAtWorkerStart;

  /// Collect a RunTrace and re-verify pairs against actual movement.
  bool strict_verification = false;

  /// Drive the algorithm's AssignmentSession one arrival at a time instead
  /// of batch replay, recording per-decision latency percentiles into
  /// RunMetrics. The assignment (and trace) are bit-identical to the batch
  /// run — Run() is the same replay — so only the measurement differs:
  /// elapsed_seconds additionally covers the per-event stopwatch reads.
  bool streaming = false;

  /// >= 1: route the run through a sim/sharded_dispatcher with this many
  /// shards instead of one session (always streaming: per-decision latency
  /// percentiles are recorded). num_shards == 1 is bit-identical to the
  /// single-session path; 0 (default) keeps the dispatcher out of the way.
  int num_shards = 0;
  /// Worker threads driving the shard sessions (clamped to num_shards).
  int shard_threads = 1;
  ShardRouterKind shard_router = ShardRouterKind::kGrid;
  /// Events staged per shard before one batched queue handoff; 0 keeps the
  /// dispatcher's default, 1 is the per-event reference
  /// (ShardedOptions::handoff_batch).
  int shard_handoff_batch = 0;
  /// Post-merge boundary reconciliation (sim/boundary_reconciler): recover
  /// cross-shard matches the partition forfeited. No-op at 1 shard.
  bool shard_reconcile = false;
};

/// Runs `algorithm` on `instance` and collects metrics. Returns an error if
/// validation was requested and failed.
Result<RunMetrics> RunAlgorithm(OnlineAlgorithm* algorithm,
                                const Instance& instance,
                                const RunnerOptions& options = {});

}  // namespace ftoa

#endif  // FTOA_SIM_RUNNER_H_
