// Per-run measurements mirroring the paper's three evaluation axes:
// matching size, running time, and memory.

#ifndef FTOA_SIM_METRICS_H_
#define FTOA_SIM_METRICS_H_

#include <cstdint>
#include <string>

namespace ftoa {

/// The outcome of running one algorithm on one instance.
struct RunMetrics {
  std::string algorithm;        ///< Display name.
  int64_t matching_size = 0;    ///< MaxSum(M).
  double elapsed_seconds = 0.0; ///< Wall time of the online phase.
  uint64_t peak_memory_bytes = 0; ///< Peak heap growth during the run.

  // Strict-simulation extras (0 when strict verification is disabled).
  int64_t strict_feasible_pairs = 0;  ///< Pairs surviving re-verification.
  int64_t strict_violations = 0;      ///< Pairs failing re-verification.

  // Trace extras.
  int64_t dispatched_workers = 0;  ///< Guide-issued relocations.
  int64_t ignored_objects = 0;     ///< Arrivals dropped by POLAR/POLAR-OP.

  // Streaming extras (populated by RunnerOptions::streaming, which drives
  // the algorithm's AssignmentSession arrival by arrival and measures each
  // decision — the production dispatcher's latency axis).
  int64_t decisions = 0;                 ///< Arrivals fed to the session.
  double decision_latency_p50_ns = 0.0;  ///< Median per-decision latency.
  double decision_latency_p99_ns = 0.0;  ///< Tail per-decision latency.
  double decision_latency_max_ns = 0.0;  ///< Worst single decision.
};

}  // namespace ftoa

#endif  // FTOA_SIM_METRICS_H_
