// Per-run measurements mirroring the paper's three evaluation axes:
// matching size, running time, and memory.

#ifndef FTOA_SIM_METRICS_H_
#define FTOA_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ftoa {

/// The outcome of running one algorithm on one instance.
struct RunMetrics {
  std::string algorithm;        ///< Display name.
  int64_t matching_size = 0;    ///< MaxSum(M).
  double elapsed_seconds = 0.0; ///< Wall time of the online phase.
  /// CPU time spent inside session decisions (the sum of the per-decision
  /// latencies). 0 when decisions are not individually timed (plain batch
  /// replay). For a sharded run this is the *summed* busy time of all
  /// shards, which can exceed elapsed_seconds when shards run concurrently
  /// — elapsed is the critical path, busy is the work.
  double busy_seconds = 0.0;
  /// Critical-path bound of a sharded run: the largest per-shard busy time
  /// (MergeShardRunMetrics' max). Unlike elapsed_seconds — which callers
  /// overwrite with the measured wall clock of the whole replay — this
  /// field survives the overwrite, so the merged-max semantics are never
  /// clobbered (the PR-5 data-loss noted in sim/sharded_dispatcher.h).
  /// 0 for unsharded runs.
  double critical_path_seconds = 0.0;
  uint64_t peak_memory_bytes = 0; ///< Peak heap growth during the run.

  // Strict-simulation extras (0 when strict verification is disabled).
  int64_t strict_feasible_pairs = 0;  ///< Pairs surviving re-verification.
  int64_t strict_violations = 0;      ///< Pairs failing re-verification.

  // Trace extras.
  int64_t dispatched_workers = 0;  ///< Guide-issued relocations.
  int64_t ignored_objects = 0;     ///< Arrivals dropped by POLAR/POLAR-OP.

  // Streaming extras (populated by RunnerOptions::streaming, which drives
  // the algorithm's AssignmentSession arrival by arrival and measures each
  // decision — the production dispatcher's latency axis).
  int64_t decisions = 0;                 ///< Arrivals fed to the session.
  double decision_latency_p50_ns = 0.0;  ///< Median per-decision latency.
  double decision_latency_p99_ns = 0.0;  ///< Tail per-decision latency.
  double decision_latency_max_ns = 0.0;  ///< Worst single decision.

  /// Pairs recovered by the post-merge boundary reconciliation pass of a
  /// sharded run (sim/boundary_reconciler); included in matching_size.
  int64_t reconciled_pairs = 0;

  /// Guide hot-swaps adopted by the run's sessions
  /// (AssignmentSession::SwapGuide; serve/service_harness's live refresh).
  int64_t guide_swaps = 0;

  /// Replaces elapsed_seconds with a measured wall clock without losing the
  /// previous value's information: when the previous elapsed was the
  /// merged critical-path bound of a sharded run, it is preserved in
  /// critical_path_seconds. All callers that re-measure the wall clock of a
  /// whole replay (dispatcher Run, sim/runner) go through this.
  void SetWallClock(double wall_seconds) {
    if (critical_path_seconds == 0.0) {
      critical_path_seconds = elapsed_seconds;
    }
    elapsed_seconds = wall_seconds;
  }
};

/// Fills `decisions`, `busy_seconds`, and the decision_latency percentile
/// fields of `metrics` from a raw per-decision latency sample, using the
/// nearest-rank percentile definition. Destructive: the sample is reordered
/// in place (nth_element). An empty sample leaves the fields at 0.
void FillDecisionLatencies(std::vector<int64_t>& latency_ns,
                           RunMetrics* metrics);

/// Aggregates per-shard RunMetrics into the merged metrics of one sharded
/// run (sim/sharded_dispatcher). The chosen merge semantics, field by field:
///
///  * Counter fields (matching_size, decisions, strict_*,
///    dispatched_workers, ignored_objects, reconciled_pairs) and
///    peak_memory_bytes are *summed*. For concurrently-running shards the
///    summed heap peak is an upper bound on the true process peak (shard
///    peaks need not coincide).
///  * busy_seconds is *summed*: it is work, and shard work adds up
///    regardless of the schedule.
///  * elapsed_seconds merges by *max*: shards execute concurrently, so the
///    critical-path shard bounds the wall clock of the sharded run. The
///    same max also lands in critical_path_seconds, which is where it
///    survives: callers that measure the true wall clock of the whole
///    sharded replay (dispatcher Run, sim/runner) overwrite
///    elapsed_seconds via RunMetrics::SetWallClock — the merged-max and
///    the per-shard work (busy_seconds) are never clobbered.
///  * Percentile fields (decision_latency_{p50,p99,max}_ns) merge by *max*.
///    This is a conservative upper bound on the pooled percentile: if at
///    most a (1-q) fraction of each shard's samples exceed that shard's
///    q-percentile, then at most a (1-q) fraction of the pooled samples
///    exceed the max of the per-shard q-percentiles, hence pooled
///    p_q <= max(shard p_q) up to nearest-rank discretization. Averaging
///    (weighted or not) holds no such guarantee — a lightly-loaded fast
///    shard would mask a saturated one — so an SLO read off the merged
///    value is still honored by every shard.
///
/// `algorithm` is taken from the first entry (all shards run one
/// algorithm). An empty input yields a default RunMetrics.
RunMetrics MergeShardRunMetrics(const std::vector<RunMetrics>& shards);

}  // namespace ftoa

#endif  // FTOA_SIM_METRICS_H_
