#include "sim/sharded_dispatcher.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>

#include "util/stopwatch.h"

namespace ftoa {

// ----------------------------------------------------------------- session --

ShardedSession::ShardedSession(const Instance& instance,
                               OnlineAlgorithm* algorithm,
                               std::unique_ptr<ShardRouter> router,
                               ThreadPool* pool)
    : instance_(&instance),
      algorithm_name_(algorithm->name()),
      router_(std::move(router)),
      pool_(pool) {
  shards_.reserve(static_cast<size_t>(router_->num_shards()));
  for (int i = 0; i < router_->num_shards(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->session = algorithm->StartSession(instance);
    shards_.push_back(std::move(shard));
  }
}

ShardedSession::~ShardedSession() {
  // An abandoned session may still have drain tasks referencing our
  // shards; wait them out before the sessions are destroyed.
  Quiesce();
}

void ShardedSession::set_collect_dispatches(bool collect) {
  for (auto& shard : shards_) shard->session->set_collect_dispatches(collect);
}

void ShardedSession::OnWorker(WorkerId worker, double time) {
  Route(ObjectKind::kWorker, worker, time);
}

void ShardedSession::OnTask(TaskId task, double time) {
  Route(ObjectKind::kTask, task, time);
}

void ShardedSession::Route(ObjectKind kind, int32_t id, double time) {
  const Point location = kind == ObjectKind::kWorker
                             ? instance_->worker(id).location
                             : instance_->task(id).location;
  const int target = router_->Route(kind, id, location);
  const Op::Kind op_kind =
      kind == ObjectKind::kWorker ? Op::Kind::kWorker : Op::Kind::kTask;
  Submit(*shards_[static_cast<size_t>(target)], Op{op_kind, id, time});
}

void ShardedSession::AdvanceTo(double time) {
  for (auto& shard : shards_) {
    Submit(*shard, Op{Op::Kind::kAdvance, -1, time});
  }
}

void ShardedSession::Flush() {
  for (auto& shard : shards_) {
    Submit(*shard, Op{Op::Kind::kFlush, -1, 0.0});
  }
  Quiesce();
}

void ShardedSession::Submit(Shard& shard, Op op) {
  if (pool_ == nullptr) {
    Apply(shard, op);
    return;
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.pending.push_back(op);
    if (!shard.draining) {
      shard.draining = true;
      schedule = true;
    }
  }
  if (schedule) {
    {
      std::lock_guard<std::mutex> lock(quiesce_mutex_);
      ++live_drains_;
    }
    pool_->Submit([this, &shard] { Drain(shard); });
  }
}

void ShardedSession::Apply(Shard& shard, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kWorker: {
      Stopwatch clock;
      shard.session->OnWorker(op.id, op.time);
      shard.latency_ns.push_back(clock.ElapsedNanos());
      break;
    }
    case Op::Kind::kTask: {
      Stopwatch clock;
      shard.session->OnTask(op.id, op.time);
      shard.latency_ns.push_back(clock.ElapsedNanos());
      break;
    }
    case Op::Kind::kAdvance:
      shard.session->AdvanceTo(op.time);
      break;
    case Op::Kind::kFlush:
      shard.session->Flush();
      break;
  }
}

void ShardedSession::Drain(Shard& shard) {
  // Actor loop: at most one Drain is live per shard (the `draining` flag),
  // so session calls for a shard are serialized in arrival order while
  // distinct shards progress concurrently.
  try {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.pending.empty()) {
          shard.draining = false;
          break;
        }
        shard.scratch.swap(shard.pending);
      }
      for (const Op& op : shard.scratch) Apply(shard, op);
      shard.scratch.clear();
    }
  } catch (...) {
    // The pool's future (where packaged_task would resurface this) is
    // discarded by Submit, so capture the failure for Finish() and keep
    // the live-drain accounting exact — leaking either would deadlock
    // Quiesce instead of failing loudly. The shard is dead from here on:
    // drop its queued and half-applied ops so a later drain (e.g. the
    // Flush broadcast) cannot replay already-applied events.
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.scratch.clear();
      shard.pending.clear();
      shard.draining = false;
    }
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    if (failure_ == nullptr) failure_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    --live_drains_;
  }
  quiesce_cv_.notify_all();
}

void ShardedSession::Quiesce() {
  if (pool_ == nullptr) return;
  std::unique_lock<std::mutex> lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] { return live_drains_ == 0; });
}

Result<ShardedRunResult> ShardedSession::Finish() {
  if (finished_) {
    return Status::FailedPrecondition(
        "ShardedSession::Finish called twice");
  }
  Flush();  // Parallel deferred work (batch tails, OPT solves) runs here.
  finished_ = true;
  std::exception_ptr failure;
  {
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    failure = failure_;
  }
  if (failure != nullptr) {
    try {
      std::rethrow_exception(failure);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("shard session failed: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("shard session failed: unknown exception");
    }
  }

  ShardedRunResult out;
  out.assignment =
      Assignment(instance_->num_workers(), instance_->num_tasks());
  out.shard_metrics.reserve(shards_.size());
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    SessionResult result = shard.session->Finish();
    for (const MatchedPair& pair : result.assignment.pairs()) {
      // A duplicate across shards means the router/session contract broke;
      // Assignment::Add reports it as FailedPrecondition.
      FTOA_RETURN_NOT_OK(
          out.assignment.Add(pair.worker, pair.task, pair.time));
    }
    RunMetrics metrics;
    metrics.algorithm = algorithm_name_;
    metrics.matching_size = static_cast<int64_t>(result.assignment.size());
    metrics.dispatched_workers =
        static_cast<int64_t>(result.trace.dispatches.size());
    metrics.ignored_objects =
        result.trace.ignored_workers + result.trace.ignored_tasks;
    metrics.elapsed_seconds =
        static_cast<double>(std::accumulate(shard.latency_ns.begin(),
                                            shard.latency_ns.end(),
                                            int64_t{0})) *
        1e-9;  // Busy time; the merged wall clock is the caller's to set.
    FillDecisionLatencies(shard.latency_ns, &metrics);
    out.shard_metrics.push_back(std::move(metrics));
    out.trace.Absorb(std::move(result.trace));
  }
  out.metrics = MergeShardRunMetrics(out.shard_metrics);
  return out;
}

// -------------------------------------------------------------- dispatcher --

ShardedDispatcher::ShardedDispatcher(OnlineAlgorithm* algorithm,
                                     const ShardedOptions& options)
    : options_(options), algorithm_(algorithm) {
  options_.num_shards = std::max(1, options_.num_shards);
  options_.num_threads =
      std::clamp(options_.num_threads, 1, options_.num_shards);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

Result<std::unique_ptr<ShardedDispatcher>> ShardedDispatcher::Create(
    const ShardedOptions& options, const AlgorithmDeps& deps) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument(
        "ShardedOptions::num_shards must be >= 1");
  }
  FTOA_ASSIGN_OR_RETURN(std::unique_ptr<OnlineAlgorithm> algorithm,
                        CreateAlgorithm(options.algorithm, deps));
  auto dispatcher = std::unique_ptr<ShardedDispatcher>(
      new ShardedDispatcher(algorithm.get(), options));
  dispatcher->owned_ = std::move(algorithm);
  return dispatcher;
}

std::unique_ptr<ShardedSession> ShardedDispatcher::StartSession(
    const Instance& instance) {
  return std::unique_ptr<ShardedSession>(new ShardedSession(
      instance, algorithm_,
      MakeShardRouter(options_.router, instance, options_.num_shards),
      pool_.get()));
}

Result<ShardedRunResult> ShardedDispatcher::Run(const Instance& instance,
                                                bool collect_dispatches) {
  const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  Stopwatch stopwatch;
  const std::unique_ptr<ShardedSession> session = StartSession(instance);
  session->set_collect_dispatches(collect_dispatches);
  for (const ArrivalEvent& event : events) {
    if (event.kind == ObjectKind::kWorker) {
      session->OnWorker(event.index, event.time);
    } else {
      session->OnTask(event.index, event.time);
    }
  }
  FTOA_ASSIGN_OR_RETURN(ShardedRunResult result, session->Finish());
  result.metrics.elapsed_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace ftoa
