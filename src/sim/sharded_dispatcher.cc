#include "sim/sharded_dispatcher.h"

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>

#include "util/stopwatch.h"

namespace ftoa {

// ----------------------------------------------------------------- session --

ShardedSession::ShardedSession(const Instance& instance,
                               OnlineAlgorithm* algorithm,
                               std::unique_ptr<ShardRouter> router,
                               ThreadPool* pool,
                               const ShardedOptions& options)
    : instance_(&instance),
      algorithm_(algorithm),
      router_(std::move(router)),
      pool_(pool),
      handoff_batch_(std::max(1, options.handoff_batch)),
      reconcile_(options.reconcile),
      latency_sample_period_(std::max(1, options.latency_sample_period)) {
  shards_.reserve(static_cast<size_t>(router_->num_shards()));
  for (int i = 0; i < router_->num_shards(); ++i) {
    auto shard = std::make_unique<Shard>();
    shard->session = algorithm->StartSession(instance);
    if (pool_ != nullptr) {
      shard->staging.reserve(static_cast<size_t>(handoff_batch_));
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedSession::~ShardedSession() {
  // An abandoned session may still have drain tasks referencing our
  // shards; wait them out before the sessions are destroyed. (Staged but
  // never flushed events die with the abandoned session.)
  Quiesce();
}

void ShardedSession::set_collect_dispatches(bool collect) {
  for (auto& shard : shards_) shard->session->set_collect_dispatches(collect);
}

void ShardedSession::OnWorker(WorkerId worker, double time) {
  Route(ObjectKind::kWorker, worker, time);
}

void ShardedSession::OnTask(TaskId task, double time) {
  Route(ObjectKind::kTask, task, time);
}

void ShardedSession::Route(ObjectKind kind, int32_t id, double time) {
  const Point location = kind == ObjectKind::kWorker
                             ? instance_->worker(id).location
                             : instance_->task(id).location;
  const int target = router_->Route(kind, id, location);
  const Op::Kind op_kind =
      kind == ObjectKind::kWorker ? Op::Kind::kWorker : Op::Kind::kTask;
  Stage(*shards_[static_cast<size_t>(target)], Op{op_kind, id, time, {}});
}

void ShardedSession::AdvanceTo(double time) {
  // A declared time boundary: stage the advance behind each shard's
  // already-staged events (order preserved) and release every batch.
  for (auto& shard : shards_) {
    Stage(*shard, Op{Op::Kind::kAdvance, -1, time, {}});
    FlushStaging(*shard);
  }
}

void ShardedSession::SwapGuide(std::shared_ptr<const OfflineGuide> guide) {
  // Broadcast like AdvanceTo: the swap is ordered behind each shard's
  // staged events and the batches are released, so every shard adopts the
  // guide at the same point of its event order.
  for (auto& shard : shards_) {
    Op op;
    op.kind = Op::Kind::kSwapGuide;
    op.guide = guide;
    Stage(*shard, std::move(op));
    FlushStaging(*shard);
  }
}

void ShardedSession::Flush() {
  for (auto& shard : shards_) {
    Stage(*shard, Op{Op::Kind::kFlush, -1, 0.0, {}});
    FlushStaging(*shard);
  }
  Quiesce();
}

void ShardedSession::Stage(Shard& shard, Op op) {
  if (pool_ == nullptr) {
    Apply(shard, op);
    return;
  }
  shard.staging.push_back(op);
  if (static_cast<int>(shard.staging.size()) >= handoff_batch_) {
    FlushStaging(shard);
  }
}

void ShardedSession::FlushStaging(Shard& shard) {
  if (pool_ == nullptr || shard.staging.empty()) return;
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.pending.empty()) {
      // Double-buffer swap: the drained-out pending vector becomes the
      // next staging buffer, so the two ping-pong with no copying.
      shard.pending.swap(shard.staging);
    } else {
      shard.pending.insert(shard.pending.end(), shard.staging.begin(),
                           shard.staging.end());
      shard.staging.clear();
    }
    if (!shard.draining) {
      shard.draining = true;
      schedule = true;
    }
  }
  if (schedule) {
    {
      std::lock_guard<std::mutex> lock(quiesce_mutex_);
      ++live_drains_;
    }
    pool_->Submit([this, &shard] { Drain(shard); });
  }
}

void ShardedSession::Apply(Shard& shard, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kWorker:
    case Op::Kind::kTask: {
      // Systematic latency sampling by per-shard decision ordinal: the
      // sampled set depends only on the shard's event order, never on
      // threads or batching. Period 1 times everything.
      const bool sampled =
          (shard.decisions++ % latency_sample_period_) == 0;
      if (sampled) {
        Stopwatch clock;
        if (op.kind == Op::Kind::kWorker) {
          shard.session->OnWorker(op.id, op.time);
        } else {
          shard.session->OnTask(op.id, op.time);
        }
        shard.latency_ns.push_back(clock.ElapsedNanos());
      } else if (op.kind == Op::Kind::kWorker) {
        shard.session->OnWorker(op.id, op.time);
      } else {
        shard.session->OnTask(op.id, op.time);
      }
      break;
    }
    case Op::Kind::kAdvance:
      shard.session->AdvanceTo(op.time);
      break;
    case Op::Kind::kFlush:
      shard.session->Flush();
      break;
    case Op::Kind::kSwapGuide:
      if (shard.session->SwapGuide(op.guide)) ++shard.guide_swaps;
      break;
  }
}

void ShardedSession::Drain(Shard& shard) {
  // Actor loop: at most one Drain is live per shard (the `draining` flag),
  // so session calls for a shard are serialized in arrival order while
  // distinct shards progress concurrently.
  try {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.pending.empty()) {
          shard.draining = false;
          break;
        }
        shard.scratch.swap(shard.pending);
      }
      for (const Op& op : shard.scratch) Apply(shard, op);
      shard.scratch.clear();
    }
  } catch (...) {
    // The pool's future (where packaged_task would resurface this) is
    // discarded by FlushStaging, so capture the failure for Finish() and
    // keep the live-drain accounting exact — leaking either would deadlock
    // Quiesce instead of failing loudly. The shard is dead from here on:
    // drop its queued and half-applied ops so a later drain (e.g. the
    // Flush broadcast) cannot replay already-applied events.
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.scratch.clear();
      shard.pending.clear();
      shard.draining = false;
    }
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    if (failure_ == nullptr) failure_ = std::current_exception();
  }
  {
    // Notify under the lock: Quiesce() may be the destructor, and an
    // unlocked notify races the condition variable's destruction once the
    // waiter observes live_drains_ == 0 and returns.
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    --live_drains_;
    quiesce_cv_.notify_all();
  }
}

void ShardedSession::Quiesce() {
  if (pool_ == nullptr) return;
  std::unique_lock<std::mutex> lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] { return live_drains_ == 0; });
}

Result<ShardedRunResult> ShardedSession::Finish() {
  if (finished_) {
    return Status::FailedPrecondition(
        "ShardedSession::Finish called twice");
  }
  Flush();  // Parallel deferred work (batch tails, OPT solves) runs here.
  finished_ = true;
  std::exception_ptr failure;
  {
    std::lock_guard<std::mutex> lock(quiesce_mutex_);
    failure = failure_;
  }
  if (failure != nullptr) {
    try {
      std::rethrow_exception(failure);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("shard session failed: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("shard session failed: unknown exception");
    }
  }

  ShardedRunResult out;
  out.assignment =
      Assignment(instance_->num_workers(), instance_->num_tasks());
  out.shard_metrics.reserve(shards_.size());
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    SessionResult result = shard.session->Finish();
    for (const MatchedPair& pair : result.assignment.pairs()) {
      // A duplicate across shards means the router/session contract broke;
      // Assignment::Add reports it as FailedPrecondition.
      FTOA_RETURN_NOT_OK(
          out.assignment.Add(pair.worker, pair.task, pair.time));
    }
    RunMetrics metrics;
    metrics.algorithm = algorithm_->name();
    metrics.matching_size = static_cast<int64_t>(result.assignment.size());
    metrics.dispatched_workers =
        static_cast<int64_t>(result.trace.dispatches.size());
    metrics.ignored_objects =
        result.trace.ignored_workers + result.trace.ignored_tasks;
    FillDecisionLatencies(shard.latency_ns, &metrics);
    // The latency trace is a 1-in-N systematic sample: the decision count
    // stays exact and the busy time extrapolates from the sampled share.
    if (!shard.latency_ns.empty()) {
      metrics.busy_seconds *= static_cast<double>(shard.decisions) /
                              static_cast<double>(shard.latency_ns.size());
    }
    metrics.decisions = shard.decisions;
    metrics.guide_swaps = shard.guide_swaps;
    // A shard has no wall clock of its own; its busy time is the best
    // per-shard estimate, and the max-merge below yields the critical-path
    // bound callers may overwrite with a measured wall clock.
    metrics.elapsed_seconds = metrics.busy_seconds;
    out.shard_metrics.push_back(std::move(metrics));
    out.trace.Absorb(std::move(result.trace));
  }
  out.metrics = MergeShardRunMetrics(out.shard_metrics);

  if (reconcile_) {
    ReconcileOptions reconcile_options;
    reconcile_options.policy = algorithm_->feasibility_policy();
    reconcile_options.guide = algorithm_->guide();
    FTOA_ASSIGN_OR_RETURN(
        out.reconcile,
        ReconcileShardBoundary(*instance_, *router_, reconcile_options,
                               &out.assignment));
    out.metrics.matching_size += out.reconcile.recovered_pairs;
    out.metrics.reconciled_pairs = out.reconcile.recovered_pairs;
    // The reconciler's candidate scans always run on the engine; fold them
    // into the merged trace so the serving stats see the whole picture.
    out.trace.retrieval.Absorb(out.reconcile.retrieval);
  }
  return out;
}

// -------------------------------------------------------------- dispatcher --

ShardedDispatcher::ShardedDispatcher(OnlineAlgorithm* algorithm,
                                     const ShardedOptions& options)
    : options_(options), algorithm_(algorithm) {
  options_.num_shards = std::max(1, options_.num_shards);
  options_.num_threads =
      ResolveNumThreads(options_.num_threads, options_.num_shards);
  options_.handoff_batch = std::max(1, options_.handoff_batch);
  options_.latency_sample_period =
      std::max(1, options_.latency_sample_period);
  if (options_.num_threads > 1) {
    if (options_.external_pool != nullptr) {
      active_pool_ = options_.external_pool;
    } else {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
      active_pool_ = pool_.get();
    }
  }
}

int ShardedDispatcher::ResolveNumThreads(int requested, int num_shards) {
  if (requested <= 0) {
    // Auto: one thread per shard up to the core count — more actor
    // threads than cores is pure scheduling overhead, so a single-core
    // host degrades to the inline path.
    requested = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  return std::clamp(requested, 1, std::max(1, num_shards));
}

Result<std::unique_ptr<ShardedDispatcher>> ShardedDispatcher::Create(
    const ShardedOptions& options, const AlgorithmDeps& deps) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument(
        "ShardedOptions::num_shards must be >= 1");
  }
  FTOA_ASSIGN_OR_RETURN(std::unique_ptr<OnlineAlgorithm> algorithm,
                        CreateAlgorithm(options.algorithm, deps));
  auto dispatcher = std::unique_ptr<ShardedDispatcher>(
      new ShardedDispatcher(algorithm.get(), options));
  dispatcher->owned_ = std::move(algorithm);
  return dispatcher;
}

std::unique_ptr<ShardedSession> ShardedDispatcher::StartSession(
    const Instance& instance) {
  return std::unique_ptr<ShardedSession>(new ShardedSession(
      instance, algorithm_,
      MakeShardRouter(options_.router, instance, options_.num_shards),
      active_pool_, options_));
}

Result<ShardedRunResult> ShardedDispatcher::Run(const Instance& instance,
                                                bool collect_dispatches) {
  const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  Stopwatch stopwatch;
  const std::unique_ptr<ShardedSession> session = StartSession(instance);
  session->set_collect_dispatches(collect_dispatches);
  for (const ArrivalEvent& event : events) {
    if (event.kind == ObjectKind::kWorker) {
      session->OnWorker(event.index, event.time);
    } else {
      session->OnTask(event.index, event.time);
    }
  }
  FTOA_ASSIGN_OR_RETURN(ShardedRunResult result, session->Finish());
  result.metrics.SetWallClock(stopwatch.ElapsedSeconds());
  return result;
}

}  // namespace ftoa
