// Arrival-to-shard routing for the sharded streaming dispatcher
// (sim/sharded_dispatcher.h). Split out so light consumers — notably
// RunnerOptions — can name a router kind without pulling in the
// dispatcher's thread-pool and registry machinery.

#ifndef FTOA_SIM_SHARD_ROUTER_H_
#define FTOA_SIM_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "model/arrival_stream.h"
#include "model/instance.h"
#include "spatial/grid.h"
#include "spatial/point.h"

namespace ftoa {

/// Which built-in router partitions the object universe.
enum class ShardRouterKind {
  kGrid,  ///< Contiguous bands of grid cells (spatial locality).
  kHash,  ///< SplitMix64 of (kind, id) (load balance, no locality).
};

/// Pluggable arrival-to-shard routing. Routers are immutable after
/// construction and must be deterministic: the same arrival always maps to
/// the same shard, independent of arrival order or thread count.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  virtual std::string name() const = 0;
  virtual int num_shards() const = 0;

  /// Shard of one arrival, in [0, num_shards()).
  virtual int Route(ObjectKind kind, int32_t id, Point location) const = 0;
};

/// Area-based router: the grid's row-major cell id space is cut into
/// num_shards contiguous bands, so a shard owns a horizontal slab of the
/// region and objects that are near each other usually share a shard —
/// which preserves most short matching edges.
class GridShardRouter final : public ShardRouter {
 public:
  /// Shard count is clamped to [1, num_cells] (more shards than cells
  /// would leave the excess permanently empty).
  GridShardRouter(const GridSpec& grid, int num_shards);

  std::string name() const override { return "grid"; }
  int num_shards() const override { return num_shards_; }
  int Route(ObjectKind kind, int32_t id, Point location) const override;

  /// Shard owning a grid cell (exposed for tests and diagnostics).
  int ShardOfCell(CellId cell) const;

 private:
  GridSpec grid_;
  int num_shards_ = 1;
};

/// Hash router: SplitMix64 of (kind, id) modulo the shard count. Balances
/// load evenly but scatters neighborhoods, so it loses more cross-shard
/// matches than the grid router — the bench quantifies the gap.
class HashShardRouter final : public ShardRouter {
 public:
  explicit HashShardRouter(int num_shards);

  std::string name() const override { return "hash"; }
  int num_shards() const override { return num_shards_; }
  int Route(ObjectKind kind, int32_t id, Point location) const override;

 private:
  int num_shards_ = 1;
};

/// Builds a built-in router for `instance` (the grid router reads the
/// instance's spacetime grid).
std::unique_ptr<ShardRouter> MakeShardRouter(ShardRouterKind kind,
                                             const Instance& instance,
                                             int num_shards);

}  // namespace ftoa

#endif  // FTOA_SIM_SHARD_ROUTER_H_
