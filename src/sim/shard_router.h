// Arrival-to-shard routing for the sharded streaming dispatcher
// (sim/sharded_dispatcher.h). Split out so light consumers — notably
// RunnerOptions — can name a router kind without pulling in the
// dispatcher's thread-pool and registry machinery.

#ifndef FTOA_SIM_SHARD_ROUTER_H_
#define FTOA_SIM_SHARD_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/arrival_stream.h"
#include "model/instance.h"
#include "spatial/grid.h"
#include "spatial/point.h"
#include "util/result.h"

namespace ftoa {

class PredictionMatrix;

/// Which built-in router partitions the object universe.
enum class ShardRouterKind {
  kGrid,  ///< Contiguous bands of grid cells (spatial locality).
  kHash,  ///< SplitMix64 of (kind, id) (load balance, no locality).
  kLoad,  ///< Cell bands weighted by per-cell object counts (balanced
          ///< supply+demand instead of balanced area).
};

/// Canonical CLI spellings of the router kinds, in declaration order —
/// the single source front ends list in usage strings and errors.
std::vector<std::string> AllShardRouterNames();

/// Canonical name of one kind ("grid", "hash", "load").
std::string ShardRouterKindName(ShardRouterKind kind);

/// Parses a canonical router name; NotFound lists the valid set (the
/// algos-style unknown-name error).
Result<ShardRouterKind> ParseShardRouterKind(const std::string& name);

/// Pluggable arrival-to-shard routing. Routers are immutable after
/// construction and must be deterministic: the same arrival always maps to
/// the same shard, independent of arrival order or thread count.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  virtual std::string name() const = 0;
  virtual int num_shards() const = 0;

  /// Shard of one arrival, in [0, num_shards()).
  virtual int Route(ObjectKind kind, int32_t id, Point location) const = 0;

  /// True iff a point within `radius` of `location` can belong to a
  /// different shard than `location` itself — the "near a shard border"
  /// predicate of the post-merge boundary reconciliation pass
  /// (sim/boundary_reconciler.h). The default is the conservative answer
  /// for routers with no spatial structure: every point is border-adjacent
  /// as soon as a second shard exists.
  virtual bool NearShardBoundary(Point location, double radius) const {
    (void)location;
    (void)radius;
    return num_shards() > 1;
  }
};

/// Common machinery of the cell-band routers: the grid's row-major cell id
/// space is cut into num_shards contiguous bands (each shard owns the cells
/// in [band_start(s), band_start(s+1))), so objects that are near each
/// other usually share a shard and most short matching edges survive.
/// Subclasses only decide where the cuts fall. The shard count is clamped
/// to [1, num_cells] (more shards than cells would leave the excess
/// permanently empty).
class BandShardRouter : public ShardRouter {
 public:
  int num_shards() const override { return num_shards_; }
  int Route(ObjectKind kind, int32_t id, Point location) const override;

  /// Exact band geometry: walks grid rows outward from `location`; within a
  /// row the foreign cells form a prefix and/or suffix of the row's cell
  /// range, so the distance test is a point-to-rectangle check per row.
  bool NearShardBoundary(Point location, double radius) const override;

  /// Shard owning a grid cell (exposed for tests and diagnostics).
  int ShardOfCell(CellId cell) const {
    return shard_of_cell_[static_cast<size_t>(cell)];
  }

  /// First cell id of shard `s`; band_start(num_shards()) == num_cells.
  /// Empty bands are possible (band_start(s) == band_start(s+1)) when one
  /// cell carries most of the weight.
  CellId band_start(int s) const {
    return band_starts_[static_cast<size_t>(s)];
  }

  const GridSpec& grid() const { return grid_; }

 protected:
  /// `shard_of_cell` must have one entry per grid cell, non-decreasing,
  /// with values in [0, num_shards).
  BandShardRouter(const GridSpec& grid, std::vector<int32_t> shard_of_cell,
                  int num_shards);

 private:
  GridSpec grid_;
  int num_shards_ = 1;
  std::vector<int32_t> shard_of_cell_;  // Per cell, non-decreasing.
  std::vector<CellId> band_starts_;     // num_shards + 1 cut points.
};

/// Area-based band router: cells are cut into bands of near-equal *count*,
/// so a shard owns a horizontal slab of the region regardless of where the
/// objects are.
class GridShardRouter final : public BandShardRouter {
 public:
  GridShardRouter(const GridSpec& grid, int num_shards);

  std::string name() const override { return "grid"; }
};

/// Load-aware band router: cells are cut into bands of near-equal *weight*,
/// where a cell's weight is its (predicted or realized) object count — so
/// shards carry balanced supply+demand instead of balanced area, and a
/// dense downtown no longer lands in one shard while empty suburbs fill the
/// rest. With all-zero weights it degenerates to the area split.
class LoadShardRouter final : public BandShardRouter {
 public:
  /// `cell_weights` must have one non-negative entry per grid cell.
  LoadShardRouter(const GridSpec& grid,
                  const std::vector<int64_t>& cell_weights, int num_shards);

  /// Weights = realized worker+task counts per cell of `instance`.
  static std::unique_ptr<LoadShardRouter> FromInstance(
      const Instance& instance, int num_shards);

  /// Weights = predicted worker+task counts per cell (`prediction` summed
  /// over time slots) — the router a production deployment builds before
  /// the day starts, from the same matrix that feeds guide generation.
  static std::unique_ptr<LoadShardRouter> FromPrediction(
      const PredictionMatrix& prediction, int num_shards);

  std::string name() const override { return "load"; }
};

/// Hash router: SplitMix64 of (kind, id) modulo the shard count. Balances
/// load evenly but scatters neighborhoods, so it loses more cross-shard
/// matches than the band routers — the bench quantifies the gap.
class HashShardRouter final : public ShardRouter {
 public:
  explicit HashShardRouter(int num_shards);

  std::string name() const override { return "hash"; }
  int num_shards() const override { return num_shards_; }
  int Route(ObjectKind kind, int32_t id, Point location) const override;

 private:
  int num_shards_ = 1;
};

/// Builds a built-in router for `instance` (the band routers read the
/// instance's spacetime grid; the load router weighs cells by the
/// instance's realized object counts — use LoadShardRouter::FromPrediction
/// to weigh by a forecast instead).
std::unique_ptr<ShardRouter> MakeShardRouter(ShardRouterKind kind,
                                             const Instance& instance,
                                             int num_shards);

}  // namespace ftoa

#endif  // FTOA_SIM_SHARD_ROUTER_H_
