#include "sim/shard_router.h"

#include <algorithm>
#include <cassert>

#include "core/prediction_matrix.h"
#include "util/string_util.h"

namespace ftoa {

namespace {

/// SplitMix64 finalizer — the bit mixer behind the hash router.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Band assignment of near-equal cumulative weight: cell c goes to the
/// shard its cumulative weight *midpoint* falls into, which is monotone
/// non-decreasing in c and puts the cuts where the weight prefix crosses
/// k * total / num_shards. All-zero totals fall back to the area split.
std::vector<int32_t> WeightedBands(const GridSpec& grid,
                                   const std::vector<int64_t>& weights,
                                   int num_shards) {
  const int num_cells = grid.num_cells();
  std::vector<int32_t> shard_of_cell(static_cast<size_t>(num_cells), 0);
  int64_t total = 0;
  for (const int64_t w : weights) total += w;
  int64_t before = 0;
  for (int c = 0; c < num_cells; ++c) {
    const int64_t w = weights[static_cast<size_t>(c)];
    const int32_t shard =
        total == 0
            ? static_cast<int32_t>(static_cast<int64_t>(c) * num_shards /
                                   num_cells)
            : static_cast<int32_t>(
                  std::min<int64_t>(num_shards - 1, (2 * before + w) *
                                                        num_shards /
                                                        (2 * total)));
    shard_of_cell[static_cast<size_t>(c)] = shard;
    before += w;
  }
  return shard_of_cell;
}

}  // namespace

std::vector<std::string> AllShardRouterNames() {
  return {"grid", "hash", "load"};
}

std::string ShardRouterKindName(ShardRouterKind kind) {
  switch (kind) {
    case ShardRouterKind::kGrid: return "grid";
    case ShardRouterKind::kHash: return "hash";
    case ShardRouterKind::kLoad: return "load";
  }
  return "grid";
}

Result<ShardRouterKind> ParseShardRouterKind(const std::string& name) {
  if (name == "grid") return ShardRouterKind::kGrid;
  if (name == "hash") return ShardRouterKind::kHash;
  if (name == "load") return ShardRouterKind::kLoad;
  return Status::NotFound("unknown shard router: " + name + " (valid: " +
                          Join(AllShardRouterNames(), ", ") + ")");
}

// ------------------------------------------------------------ band routers --

BandShardRouter::BandShardRouter(const GridSpec& grid,
                                 std::vector<int32_t> shard_of_cell,
                                 int num_shards)
    : grid_(grid),
      num_shards_(num_shards),
      shard_of_cell_(std::move(shard_of_cell)) {
  assert(static_cast<int>(shard_of_cell_.size()) == grid_.num_cells());
  band_starts_.assign(static_cast<size_t>(num_shards_) + 1,
                      grid_.num_cells());
  band_starts_[0] = 0;
  // shard_of_cell_ is non-decreasing; band_starts_[s] ends up the first
  // cell whose shard is >= s (empty bands inherit the next band's start,
  // empty trailing bands stay at num_cells).
  for (int c = grid_.num_cells() - 1; c >= 0; --c) {
    const int32_t s = shard_of_cell_[static_cast<size_t>(c)];
    assert(s >= 0 && s < num_shards_);
    assert(c == 0 || shard_of_cell_[static_cast<size_t>(c - 1)] <= s);
    for (int b = s; b > 0 && band_starts_[static_cast<size_t>(b)] > c; --b) {
      band_starts_[static_cast<size_t>(b)] = c;
    }
  }
}

int BandShardRouter::Route(ObjectKind kind, int32_t id,
                           Point location) const {
  (void)kind;
  (void)id;
  return ShardOfCell(grid_.CellOf(location));
}

bool BandShardRouter::NearShardBoundary(Point location, double radius) const {
  if (num_shards_ <= 1 || radius < 0.0) return false;
  const Point p = grid_.Clamp(location);
  const int own = ShardOfCell(grid_.CellOf(p));
  // Own band: cells [lo, hi). Everything outside is foreign.
  const int64_t lo = band_start(own);
  const int64_t hi = band_start(own + 1);
  const int cells_x = grid_.cells_x();
  const int cells_y = grid_.cells_y();
  const double cw = grid_.cell_width();
  const double ch = grid_.cell_height();
  const double radius_sq = radius * radius;
  const int own_row = grid_.CellY(grid_.CellOf(p));

  // Distance from p to the foreign cells of row y: within one row the
  // foreign cells are a prefix (ids < lo) and/or suffix (ids >= hi) of the
  // row's id range, i.e. one or two axis-aligned rectangles.
  const auto row_reaches = [&](int y) {
    const double slab_lo = y * ch;
    const double slab_hi = (y + 1) * ch;
    const double dy =
        p.y < slab_lo ? slab_lo - p.y : (p.y > slab_hi ? p.y - slab_hi : 0.0);
    if (dy * dy > radius_sq) return false;
    const int64_t row_first = static_cast<int64_t>(y) * cells_x;
    const int64_t row_last = row_first + cells_x - 1;
    if (row_first < lo) {  // Prefix rectangle: columns [0, prefix_end).
      const int64_t prefix_end = std::min<int64_t>(lo, row_last + 1);
      const double seg_hi = static_cast<double>(prefix_end - row_first) * cw;
      const double dx = p.x > seg_hi ? p.x - seg_hi : 0.0;
      if (dx * dx + dy * dy <= radius_sq) return true;
    }
    if (row_last >= hi) {  // Suffix rectangle: columns [suffix_begin, W).
      const int64_t suffix_begin = std::max<int64_t>(hi, row_first);
      const double seg_lo = static_cast<double>(suffix_begin - row_first) * cw;
      const double dx = p.x < seg_lo ? seg_lo - p.x : 0.0;
      if (dx * dx + dy * dy <= radius_sq) return true;
    }
    return false;
  };

  // Walk rows outward from p's row so the vertical early-exit kicks in as
  // soon as both directions leave the radius.
  const int max_dy = cells_y;  // Upper bound; the vertical check prunes.
  for (int dy = 0; dy < max_dy; ++dy) {
    bool any_in_vertical_range = false;
    // dy == 0 contributes only the own row; beyond it, one row per side.
    const int rows_at_dy[2] = {own_row - dy, own_row + dy};
    const int sides = dy == 0 ? 1 : 2;
    for (int side = 0; side < sides; ++side) {
      const int y = rows_at_dy[side];
      if (y < 0 || y >= cells_y) continue;
      const double slab_lo = y * ch;
      const double slab_hi = (y + 1) * ch;
      const double vertical =
          p.y < slab_lo ? slab_lo - p.y
                        : (p.y > slab_hi ? p.y - slab_hi : 0.0);
      if (vertical > radius) continue;
      any_in_vertical_range = true;
      if (row_reaches(y)) return true;
    }
    if (!any_in_vertical_range) break;
  }
  return false;
}

GridShardRouter::GridShardRouter(const GridSpec& grid, int num_shards)
    : BandShardRouter(
          grid,
          [&] {
            const int shards = std::clamp(num_shards, 1, grid.num_cells());
            std::vector<int32_t> cells(
                static_cast<size_t>(grid.num_cells()));
            // Contiguous row-major bands of near-equal size.
            for (int c = 0; c < grid.num_cells(); ++c) {
              cells[static_cast<size_t>(c)] = static_cast<int32_t>(
                  static_cast<int64_t>(c) * shards / grid.num_cells());
            }
            return cells;
          }(),
          std::clamp(num_shards, 1, grid.num_cells())) {}

LoadShardRouter::LoadShardRouter(const GridSpec& grid,
                                 const std::vector<int64_t>& cell_weights,
                                 int num_shards)
    : BandShardRouter(
          grid,
          WeightedBands(grid, cell_weights,
                        std::clamp(num_shards, 1, grid.num_cells())),
          std::clamp(num_shards, 1, grid.num_cells())) {}

std::unique_ptr<LoadShardRouter> LoadShardRouter::FromInstance(
    const Instance& instance, int num_shards) {
  const GridSpec& grid = instance.spacetime().grid();
  std::vector<int64_t> weights(static_cast<size_t>(grid.num_cells()), 0);
  for (const Worker& w : instance.workers()) {
    ++weights[static_cast<size_t>(grid.CellOf(w.location))];
  }
  for (const Task& r : instance.tasks()) {
    ++weights[static_cast<size_t>(grid.CellOf(r.location))];
  }
  return std::make_unique<LoadShardRouter>(grid, weights, num_shards);
}

std::unique_ptr<LoadShardRouter> LoadShardRouter::FromPrediction(
    const PredictionMatrix& prediction, int num_shards) {
  const SpacetimeSpec& st = prediction.spacetime();
  std::vector<int64_t> weights(static_cast<size_t>(st.num_areas()), 0);
  for (TypeId type = 0; type < st.num_types(); ++type) {
    weights[static_cast<size_t>(st.AreaOfType(type))] +=
        prediction.workers_at(type) + prediction.tasks_at(type);
  }
  return std::make_unique<LoadShardRouter>(st.grid(), weights, num_shards);
}

// ------------------------------------------------------------- hash router --

HashShardRouter::HashShardRouter(int num_shards)
    : num_shards_(std::max(1, num_shards)) {}

int HashShardRouter::Route(ObjectKind kind, int32_t id,
                           Point location) const {
  (void)location;
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(id)) << 1) |
                       static_cast<uint64_t>(kind);
  return static_cast<int>(Mix64(key) %
                          static_cast<uint64_t>(num_shards_));
}

std::unique_ptr<ShardRouter> MakeShardRouter(ShardRouterKind kind,
                                             const Instance& instance,
                                             int num_shards) {
  switch (kind) {
    case ShardRouterKind::kGrid:
      return std::make_unique<GridShardRouter>(instance.spacetime().grid(),
                                               num_shards);
    case ShardRouterKind::kHash:
      return std::make_unique<HashShardRouter>(num_shards);
    case ShardRouterKind::kLoad:
      return LoadShardRouter::FromInstance(instance, num_shards);
  }
  return std::make_unique<GridShardRouter>(instance.spacetime().grid(),
                                           num_shards);
}

}  // namespace ftoa
