#include "sim/shard_router.h"

#include <algorithm>

namespace ftoa {

namespace {

/// SplitMix64 finalizer — the bit mixer behind the hash router.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

GridShardRouter::GridShardRouter(const GridSpec& grid, int num_shards)
    : grid_(grid),
      num_shards_(std::clamp(num_shards, 1, grid.num_cells())) {}

int GridShardRouter::ShardOfCell(CellId cell) const {
  // Cells are cut into num_shards_ contiguous row-major bands of
  // near-equal size.
  return static_cast<int>(static_cast<int64_t>(cell) * num_shards_ /
                          grid_.num_cells());
}

int GridShardRouter::Route(ObjectKind kind, int32_t id,
                           Point location) const {
  (void)kind;
  (void)id;
  return ShardOfCell(grid_.CellOf(location));
}

HashShardRouter::HashShardRouter(int num_shards)
    : num_shards_(std::max(1, num_shards)) {}

int HashShardRouter::Route(ObjectKind kind, int32_t id,
                           Point location) const {
  (void)location;
  const uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(id)) << 1) |
                       static_cast<uint64_t>(kind);
  return static_cast<int>(Mix64(key) %
                          static_cast<uint64_t>(num_shards_));
}

std::unique_ptr<ShardRouter> MakeShardRouter(ShardRouterKind kind,
                                             const Instance& instance,
                                             int num_shards) {
  switch (kind) {
    case ShardRouterKind::kGrid:
      return std::make_unique<GridShardRouter>(instance.spacetime().grid(),
                                               num_shards);
    case ShardRouterKind::kHash:
      return std::make_unique<HashShardRouter>(num_shards);
  }
  return std::make_unique<GridShardRouter>(instance.spacetime().grid(),
                                           num_shards);
}

}  // namespace ftoa
