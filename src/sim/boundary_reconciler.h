// Post-merge boundary reconciliation for the sharded streaming pipeline
// (sim/sharded_dispatcher.h). A partitioned run forfeits every match whose
// endpoints the router put into different shards; after the shard merge,
// this pass collects the objects left unmatched within a feasibility-radius
// band of the shard borders and runs one deterministic cross-shard matching
// over them — recovering boundary matches without ever disturbing a pair a
// shard committed.
//
// Contract (property-tested in tests/sim/boundary_reconciler_test.cc):
//  - Pairs are only *added*, never removed or rewired: the merged
//    assignment's existing pairs are a prefix of the reconciled one.
//  - Every added pair joins two previously-unmatched objects routed to
//    *different* shards (same-shard leftovers stay untouched — those are
//    the per-shard algorithm's own decisions) and satisfies the
//    algorithm's object-level deadline policy.
//  - For guided algorithms the additions are guide-capacity-aware: at most
//    guide.MatchedPairCountsByTypePair() pairs per (worker type, task
//    type), mirroring how each shard realizes matches along Ĝf's edges.
//  - The pass is a pure function of (instance, router, merged assignment):
//    bit-identical across reruns and thread counts, and a no-op with one
//    shard (no border exists).

#ifndef FTOA_SIM_BOUNDARY_RECONCILER_H_
#define FTOA_SIM_BOUNDARY_RECONCILER_H_

#include <cstdint>

#include "core/guide.h"
#include "model/assignment.h"
#include "model/instance.h"
#include "retrieval/stats.h"
#include "sim/shard_router.h"
#include "util/result.h"

namespace ftoa {

/// Reconciliation pass configuration.
struct ReconcileOptions {
  /// Object-level deadline predicate every added pair must satisfy —
  /// the algorithm's own policy (OnlineAlgorithm::feasibility_policy).
  FeasibilityPolicy policy = FeasibilityPolicy::kDispatchAtWorkerStart;

  /// Non-null for guided algorithms (OnlineAlgorithm::guide): additions
  /// are capped per (worker type, task type) by the guide's matched-pair
  /// multiplicities.
  const OfflineGuide* guide = nullptr;

  /// Candidate edges kept per boundary worker (nearest-first). Bounds the
  /// matcher's memory and the augmentation work; the recovered matching is
  /// maximum over the kept edges.
  int max_candidates_per_worker = 8;
};

/// What one reconciliation pass did.
struct ReconcileStats {
  int64_t boundary_workers = 0;  ///< Unmatched workers near a border.
  int64_t boundary_tasks = 0;    ///< Unmatched tasks near a border.
  int64_t recovered_pairs = 0;   ///< Pairs appended to the assignment.
  int64_t capacity_dropped = 0;  ///< Matches dropped by guide capacity.
  /// Per-worker candidate-scan instrumentation (one retrieval query per
  /// boundary worker).
  RetrievalStats retrieval;
};

/// Appends recovered cross-shard pairs to `assignment` (decision time
/// max(Sw, Sr) — the earliest moment a platform seeing both shards could
/// have committed the pair). Candidate discovery runs the shared retrieval
/// engine's top-k query over a CandidateStore of the boundary tasks
/// (best-first cell walk, arrival-time binary search per bucket); the
/// matching itself is a DynamicBipartiteMatcher augmented in worker id
/// order, so the result is deterministic and maximum over the kept
/// candidate edges.
Result<ReconcileStats> ReconcileShardBoundary(const Instance& instance,
                                              const ShardRouter& router,
                                              const ReconcileOptions& options,
                                              Assignment* assignment);

}  // namespace ftoa

#endif  // FTOA_SIM_BOUNDARY_RECONCILER_H_
