// Worker movement model: reconstructs where a dispatched worker actually is
// at any time, given the relocation instructions an algorithm issued. Used
// by strict verification (DESIGN.md: guide-trust vs strict simulation).

#ifndef FTOA_SIM_DISPATCHER_H_
#define FTOA_SIM_DISPATCHER_H_

#include <vector>

#include "core/online_algorithm.h"
#include "model/instance.h"
#include "spatial/point.h"

namespace ftoa {

/// Replays DispatchRecords into per-worker movement plans and answers
/// position queries.
class Dispatcher {
 public:
  /// Builds movement plans from `trace` (may contain at most one dispatch
  /// per worker — the POLAR family dispatches only on arrival).
  Dispatcher(const Instance& instance, const RunTrace& trace);

  /// Position of `worker` at time `t`: at its origin until its dispatch is
  /// issued, then en route toward the target at the instance velocity, then
  /// parked at the target. Aborts on an out-of-range worker id.
  Point PositionAt(WorkerId worker, double t) const;

  /// True iff the worker was issued a relocation instruction. Aborts on an
  /// out-of-range worker id.
  bool WasDispatched(WorkerId worker) const {
    return PlanOf(worker).active;
  }

 private:
  struct MovementPlan {
    bool active = false;
    Point origin;
    Point target;
    double depart_time = 0.0;
  };

  /// Bounds-checked plan lookup: a worker id outside the instance's id
  /// space means the trace and the instance disagree — abort loudly (the
  /// death-test path) instead of indexing out of bounds.
  const MovementPlan& PlanOf(WorkerId worker) const;

  const Instance* instance_;
  std::vector<MovementPlan> plans_;
};

}  // namespace ftoa

#endif  // FTOA_SIM_DISPATCHER_H_
