#include "sim/runner.h"

#include <algorithm>
#include <vector>

#include "model/arrival_stream.h"
#include "sim/simulator.h"
#include "util/memory_tracker.h"
#include "util/stopwatch.h"

namespace ftoa {

namespace {

/// Nearest-rank percentile of an unsorted latency sample (destructive).
double PercentileNanos(std::vector<int64_t>& latencies, double quantile) {
  if (latencies.empty()) return 0.0;
  const size_t rank = std::min(
      latencies.size() - 1,
      static_cast<size_t>(quantile * static_cast<double>(latencies.size())));
  std::nth_element(latencies.begin(), latencies.begin() + rank,
                   latencies.end());
  return static_cast<double>(latencies[rank]);
}

/// Streams the instance's arrival order through one session, timing every
/// decision. Produces the same assignment/trace as algorithm->Run(): the
/// driver is the same replay, just instrumented.
Assignment RunStreaming(OnlineAlgorithm* algorithm, const Instance& instance,
                        RunTrace* trace, RunMetrics* metrics) {
  const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  std::vector<int64_t> latencies;
  latencies.reserve(events.size());

  const std::unique_ptr<AssignmentSession> session =
      algorithm->StartSession(instance);
  if (trace == nullptr) session->set_collect_dispatches(false);
  Stopwatch decision_clock;
  for (const ArrivalEvent& event : events) {
    decision_clock.Restart();
    if (event.kind == ObjectKind::kWorker) {
      session->OnWorker(event.index, event.time);
    } else {
      session->OnTask(event.index, event.time);
    }
    latencies.push_back(decision_clock.ElapsedNanos());
  }
  SessionResult result = session->Finish();
  if (trace != nullptr) trace->Absorb(std::move(result.trace));

  metrics->decisions = static_cast<int64_t>(latencies.size());
  metrics->decision_latency_p50_ns = PercentileNanos(latencies, 0.50);
  metrics->decision_latency_p99_ns = PercentileNanos(latencies, 0.99);
  if (!latencies.empty()) {
    metrics->decision_latency_max_ns = static_cast<double>(
        *std::max_element(latencies.begin(), latencies.end()));
  }
  return std::move(result.assignment);
}

}  // namespace

Result<RunMetrics> RunAlgorithm(OnlineAlgorithm* algorithm,
                                const Instance& instance,
                                const RunnerOptions& options) {
  RunMetrics metrics;
  metrics.algorithm = algorithm->name();

  RunTrace trace;
  RunTrace* trace_ptr = options.strict_verification ? &trace : nullptr;

  MemoryScope memory_scope;
  Stopwatch stopwatch;
  Assignment assignment =
      options.streaming
          ? RunStreaming(algorithm, instance, trace_ptr, &metrics)
          : algorithm->Run(instance, trace_ptr);
  metrics.elapsed_seconds = stopwatch.ElapsedSeconds();
  metrics.peak_memory_bytes = memory_scope.PeakDelta();
  metrics.matching_size = static_cast<int64_t>(assignment.size());

  if (options.validate) {
    FTOA_RETURN_NOT_OK(
        assignment.Validate(instance, options.validation_policy));
  }
  if (options.strict_verification) {
    const StrictVerification strict =
        VerifyStrict(instance, assignment, trace);
    metrics.strict_feasible_pairs = strict.feasible_pairs;
    metrics.strict_violations = strict.violations;
    metrics.dispatched_workers =
        static_cast<int64_t>(trace.dispatches.size());
    metrics.ignored_objects = trace.ignored_workers + trace.ignored_tasks;
  }
  return metrics;
}

}  // namespace ftoa
