#include "sim/runner.h"

#include <algorithm>
#include <vector>

#include "model/arrival_stream.h"
#include "sim/sharded_dispatcher.h"
#include "sim/simulator.h"
#include "util/memory_tracker.h"
#include "util/stopwatch.h"

namespace ftoa {

namespace {

/// Streams the instance's arrival order through one session, timing every
/// decision. Produces the same assignment/trace as algorithm->Run(): the
/// driver is the same replay, just instrumented.
Assignment RunStreaming(OnlineAlgorithm* algorithm, const Instance& instance,
                        RunTrace* trace, RunMetrics* metrics) {
  const std::vector<ArrivalEvent> events = BuildArrivalStream(instance);
  std::vector<int64_t> latencies;
  latencies.reserve(events.size());

  const std::unique_ptr<AssignmentSession> session =
      algorithm->StartSession(instance);
  if (trace == nullptr) session->set_collect_dispatches(false);
  Stopwatch decision_clock;
  for (const ArrivalEvent& event : events) {
    decision_clock.Restart();
    if (event.kind == ObjectKind::kWorker) {
      session->OnWorker(event.index, event.time);
    } else {
      session->OnTask(event.index, event.time);
    }
    latencies.push_back(decision_clock.ElapsedNanos());
  }
  SessionResult result = session->Finish();
  if (trace != nullptr) trace->Absorb(std::move(result.trace));

  FillDecisionLatencies(latencies, metrics);
  return std::move(result.assignment);
}

/// The sharded serving path: one ShardedDispatcher wrapping the caller's
/// algorithm replays the stream through per-shard sessions. Per-decision
/// latencies and per-shard counters are aggregated by MergeShardRunMetrics;
/// the wall clock and heap peak are re-measured here so the three paper
/// axes stay comparable with the single-session paths.
Result<RunMetrics> RunSharded(OnlineAlgorithm* algorithm,
                              const Instance& instance,
                              const RunnerOptions& options) {
  ShardedOptions sharded;
  sharded.num_shards = options.num_shards;
  sharded.num_threads = options.shard_threads;
  sharded.router = options.shard_router;
  if (options.shard_handoff_batch > 0) {
    sharded.handoff_batch = options.shard_handoff_batch;
  }
  sharded.reconcile = options.shard_reconcile;
  ShardedDispatcher dispatcher(algorithm, sharded);

  MemoryScope memory_scope;
  Stopwatch stopwatch;
  FTOA_ASSIGN_OR_RETURN(
      ShardedRunResult result,
      dispatcher.Run(instance,
                     /*collect_dispatches=*/options.strict_verification));
  RunMetrics metrics = std::move(result.metrics);
  metrics.SetWallClock(stopwatch.ElapsedSeconds());
  metrics.peak_memory_bytes = memory_scope.PeakDelta();
  metrics.matching_size = static_cast<int64_t>(result.assignment.size());

  if (options.validate) {
    FTOA_RETURN_NOT_OK(
        result.assignment.Validate(instance, options.validation_policy));
  }
  if (options.strict_verification) {
    const StrictVerification strict =
        VerifyStrict(instance, result.assignment, result.trace);
    metrics.strict_feasible_pairs = strict.feasible_pairs;
    metrics.strict_violations = strict.violations;
  }
  return metrics;
}

}  // namespace

Result<RunMetrics> RunAlgorithm(OnlineAlgorithm* algorithm,
                                const Instance& instance,
                                const RunnerOptions& options) {
  if (options.num_shards >= 1) return RunSharded(algorithm, instance, options);

  RunMetrics metrics;
  metrics.algorithm = algorithm->name();

  RunTrace trace;
  RunTrace* trace_ptr = options.strict_verification ? &trace : nullptr;

  MemoryScope memory_scope;
  Stopwatch stopwatch;
  Assignment assignment =
      options.streaming
          ? RunStreaming(algorithm, instance, trace_ptr, &metrics)
          : algorithm->Run(instance, trace_ptr);
  metrics.elapsed_seconds = stopwatch.ElapsedSeconds();
  metrics.peak_memory_bytes = memory_scope.PeakDelta();
  metrics.matching_size = static_cast<int64_t>(assignment.size());

  if (options.validate) {
    FTOA_RETURN_NOT_OK(
        assignment.Validate(instance, options.validation_policy));
  }
  if (options.strict_verification) {
    const StrictVerification strict =
        VerifyStrict(instance, assignment, trace);
    metrics.strict_feasible_pairs = strict.feasible_pairs;
    metrics.strict_violations = strict.violations;
    metrics.dispatched_workers =
        static_cast<int64_t>(trace.dispatches.size());
    metrics.ignored_objects = trace.ignored_workers + trace.ignored_tasks;
  }
  return metrics;
}

}  // namespace ftoa
