#include "sim/runner.h"

#include "sim/simulator.h"
#include "util/memory_tracker.h"
#include "util/stopwatch.h"

namespace ftoa {

Result<RunMetrics> RunAlgorithm(OnlineAlgorithm* algorithm,
                                const Instance& instance,
                                const RunnerOptions& options) {
  RunMetrics metrics;
  metrics.algorithm = algorithm->name();

  RunTrace trace;
  RunTrace* trace_ptr = options.strict_verification ? &trace : nullptr;

  MemoryScope memory_scope;
  Stopwatch stopwatch;
  Assignment assignment = algorithm->Run(instance, trace_ptr);
  metrics.elapsed_seconds = stopwatch.ElapsedSeconds();
  metrics.peak_memory_bytes = memory_scope.PeakDelta();
  metrics.matching_size = static_cast<int64_t>(assignment.size());

  if (options.validate) {
    FTOA_RETURN_NOT_OK(
        assignment.Validate(instance, options.validation_policy));
  }
  if (options.strict_verification) {
    const StrictVerification strict =
        VerifyStrict(instance, assignment, trace);
    metrics.strict_feasible_pairs = strict.feasible_pairs;
    metrics.strict_violations = strict.violations;
    metrics.dispatched_workers =
        static_cast<int64_t>(trace.dispatches.size());
    metrics.ignored_objects = trace.ignored_workers + trace.ignored_tasks;
  }
  return metrics;
}

}  // namespace ftoa
