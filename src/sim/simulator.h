// Strict post-hoc verification of an assignment against the physical model:
// the paper's analysis assumes guide-matched pairs always realize
// (Section 5.1, "we assume each pair matched based on the offline guide can
// be matched in reality"); the strict simulator re-checks every committed
// pair using actual worker positions (including guide-issued relocations)
// and actual deadlines, quantifying the cost of that assumption (E16).

#ifndef FTOA_SIM_SIMULATOR_H_
#define FTOA_SIM_SIMULATOR_H_

#include <cstdint>

#include "core/online_algorithm.h"
#include "model/assignment.h"
#include "model/instance.h"

namespace ftoa {

/// Result of strict verification.
struct StrictVerification {
  int64_t total_pairs = 0;
  int64_t feasible_pairs = 0;
  int64_t violations = 0;

  /// Violation breakdown.
  int64_t late_arrival = 0;     ///< Worker cannot reach the task in time.
  int64_t worker_expired = 0;   ///< Pair decided after the worker left.
  int64_t task_not_released = 0; ///< Pair decided before the task existed.
};

/// Re-verifies every matched pair: at the pair's decision time the task must
/// be released, the worker must still be on the platform (small tolerance
/// `epsilon` absorbs slot-midpoint discretization), and traveling from the
/// worker's *actual* position (per `trace` relocations) must reach the task
/// by its deadline.
StrictVerification VerifyStrict(const Instance& instance,
                                const Assignment& assignment,
                                const RunTrace& trace,
                                double epsilon = 1e-9);

}  // namespace ftoa

#endif  // FTOA_SIM_SIMULATOR_H_
