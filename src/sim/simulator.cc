#include "sim/simulator.h"

#include "sim/dispatcher.h"

namespace ftoa {

StrictVerification VerifyStrict(const Instance& instance,
                                const Assignment& assignment,
                                const RunTrace& trace, double epsilon) {
  StrictVerification result;
  Dispatcher dispatcher(instance, trace);
  const double velocity = instance.velocity();

  for (const MatchedPair& pair : assignment.pairs()) {
    ++result.total_pairs;
    const Worker& w = instance.worker(pair.worker);
    const Task& r = instance.task(pair.task);
    bool ok = true;
    if (pair.time + epsilon < r.start) {
      ++result.task_not_released;
      ok = false;
    }
    if (pair.time > w.Deadline() + epsilon) {
      ++result.worker_expired;
      ok = false;
    }
    if (ok) {
      const Point position = dispatcher.PositionAt(pair.worker, pair.time);
      const double arrival =
          pair.time + TravelTime(position, r.location, velocity);
      if (arrival > r.Deadline() + epsilon) {
        ++result.late_arrival;
        ok = false;
      }
    }
    if (ok) {
      ++result.feasible_pairs;
    } else {
      ++result.violations;
    }
  }
  return result;
}

}  // namespace ftoa
