#include "sim/metrics.h"

#include <algorithm>
#include <numeric>

namespace ftoa {

namespace {

/// Nearest-rank percentile of an unsorted latency sample (destructive).
double PercentileNanos(std::vector<int64_t>& latencies, double quantile) {
  if (latencies.empty()) return 0.0;
  const size_t rank = std::min(
      latencies.size() - 1,
      static_cast<size_t>(quantile * static_cast<double>(latencies.size())));
  std::nth_element(latencies.begin(), latencies.begin() + rank,
                   latencies.end());
  return static_cast<double>(latencies[rank]);
}

}  // namespace

void FillDecisionLatencies(std::vector<int64_t>& latency_ns,
                           RunMetrics* metrics) {
  metrics->decisions = static_cast<int64_t>(latency_ns.size());
  metrics->busy_seconds =
      static_cast<double>(std::accumulate(latency_ns.begin(),
                                          latency_ns.end(), int64_t{0})) *
      1e-9;
  metrics->decision_latency_p50_ns = PercentileNanos(latency_ns, 0.50);
  metrics->decision_latency_p99_ns = PercentileNanos(latency_ns, 0.99);
  if (!latency_ns.empty()) {
    metrics->decision_latency_max_ns = static_cast<double>(
        *std::max_element(latency_ns.begin(), latency_ns.end()));
  }
}

RunMetrics MergeShardRunMetrics(const std::vector<RunMetrics>& shards) {
  RunMetrics merged;
  if (shards.empty()) return merged;
  merged.algorithm = shards.front().algorithm;
  for (const RunMetrics& shard : shards) {
    merged.matching_size += shard.matching_size;
    merged.elapsed_seconds =
        std::max(merged.elapsed_seconds, shard.elapsed_seconds);
    // The critical-path bound survives later wall-clock overwrites of
    // elapsed_seconds (SetWallClock); nested merges keep the largest bound
    // seen anywhere below.
    merged.critical_path_seconds =
        std::max({merged.critical_path_seconds, shard.critical_path_seconds,
                  shard.elapsed_seconds});
    merged.busy_seconds += shard.busy_seconds;
    merged.peak_memory_bytes += shard.peak_memory_bytes;
    merged.strict_feasible_pairs += shard.strict_feasible_pairs;
    merged.strict_violations += shard.strict_violations;
    merged.dispatched_workers += shard.dispatched_workers;
    merged.ignored_objects += shard.ignored_objects;
    merged.decisions += shard.decisions;
    merged.reconciled_pairs += shard.reconciled_pairs;
    merged.guide_swaps += shard.guide_swaps;
    merged.decision_latency_p50_ns = std::max(merged.decision_latency_p50_ns,
                                              shard.decision_latency_p50_ns);
    merged.decision_latency_p99_ns = std::max(merged.decision_latency_p99_ns,
                                              shard.decision_latency_p99_ns);
    merged.decision_latency_max_ns = std::max(merged.decision_latency_max_ns,
                                              shard.decision_latency_max_ns);
  }
  return merged;
}

}  // namespace ftoa
