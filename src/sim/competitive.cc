#include "sim/competitive.h"

#include <algorithm>
#include <future>
#include <utility>
#include <vector>

#include "baselines/offline_opt.h"
#include "util/thread_pool.h"

namespace ftoa {

namespace {

std::vector<double> WeightsOf(const std::vector<int32_t>& counts) {
  return std::vector<double>(counts.begin(), counts.end());
}

}  // namespace

IidInstanceSampler::IidInstanceSampler(PredictionMatrix prediction,
                                       double velocity,
                                       double worker_duration,
                                       double task_duration)
    : prediction_(std::move(prediction)),
      worker_types_(WeightsOf(prediction_.workers())),
      task_types_(WeightsOf(prediction_.tasks())),
      velocity_(velocity),
      worker_duration_(worker_duration),
      task_duration_(task_duration) {}

Instance IidInstanceSampler::Sample(Rng* rng) const {
  const SpacetimeSpec& st = prediction_.spacetime();
  const GridSpec& grid = st.grid();
  const SlotSpec& slots = st.slots();

  auto sample_object = [&](TypeId type, double duration, auto* object) {
    const int slot = st.SlotOfType(type);
    const CellId cell = st.AreaOfType(type);
    const int cx = grid.CellX(cell);
    const int cy = grid.CellY(cell);
    object->location = Point{(cx + rng->NextDouble()) * grid.cell_width(),
                             (cy + rng->NextDouble()) * grid.cell_height()};
    object->start =
        slots.SlotStart(slot) + rng->NextDouble() * slots.slot_duration();
    object->duration = duration;
  };

  std::vector<Worker> workers(
      static_cast<size_t>(prediction_.TotalWorkers()));
  for (Worker& w : workers) {
    sample_object(static_cast<TypeId>(worker_types_.Sample(*rng)),
                  worker_duration_, &w);
  }
  std::vector<Task> tasks(static_cast<size_t>(prediction_.TotalTasks()));
  for (Task& r : tasks) {
    sample_object(static_cast<TypeId>(task_types_.Sample(*rng)),
                  task_duration_, &r);
  }
  return Instance(st, velocity_, std::move(workers), std::move(tasks));
}

Result<CompetitiveEstimate> EstimateCompetitiveRatio(
    const IidInstanceSampler& sampler,
    const std::function<std::unique_ptr<OnlineAlgorithm>()>&
        algorithm_factory,
    int trials, uint64_t seed, int num_threads, ThreadPool* pool) {
  if (trials <= 0) {
    return Status::InvalidArgument(
        "EstimateCompetitiveRatio: trials must be positive");
  }
  if (sampler.prediction().TotalWorkers() == 0 ||
      sampler.prediction().TotalTasks() == 0) {
    return Status::FailedPrecondition(
        "EstimateCompetitiveRatio: empty prediction");
  }

  // Per-trial outcomes, indexed by trial so the aggregation below runs in
  // trial order — the estimate is bit-identical for every thread count.
  struct TrialOutcome {
    double ratio = 0.0;
    bool degenerate = false;
  };
  std::vector<TrialOutcome> outcomes(static_cast<size_t>(trials));

  // Each trial forks its own RNG stream from the (never-advanced) root, so
  // a trial's instance depends only on (seed, trial index), not on which
  // thread — or in what order — it runs.
  auto run_range = [&](int begin, int end) {
    const Rng root(seed);
    OfflineOpt opt;
    for (int trial = begin; trial < end; ++trial) {
      Rng trial_rng = root.Fork(static_cast<uint64_t>(trial) + 1);
      const Instance instance = sampler.Sample(&trial_rng);
      const size_t opt_size = opt.Run(instance).size();
      TrialOutcome& outcome = outcomes[static_cast<size_t>(trial)];
      if (opt_size == 0) {
        outcome.degenerate = true;
        continue;
      }
      const std::unique_ptr<OnlineAlgorithm> algorithm = algorithm_factory();
      const size_t online_size = algorithm->Run(instance).size();
      outcome.ratio =
          static_cast<double>(online_size) / static_cast<double>(opt_size);
    }
  };

  const int chunks = std::max(1, std::min(num_threads, trials));
  if (chunks <= 1) {
    run_range(0, trials);
  } else {
    std::unique_ptr<ThreadPool> owned;
    if (pool == nullptr) {
      owned = std::make_unique<ThreadPool>(chunks);
      pool = owned.get();
    }
    std::vector<std::future<void>> done;
    done.reserve(static_cast<size_t>(chunks));
    for (int i = 0; i < chunks; ++i) {
      const int begin = static_cast<int>(
          static_cast<int64_t>(trials) * i / chunks);
      const int end = static_cast<int>(
          static_cast<int64_t>(trials) * (i + 1) / chunks);
      done.push_back(pool->Submit([&run_range, begin, end]() {
        run_range(begin, end);
      }));
    }
    for (std::future<void>& f : done) f.get();
  }

  CompetitiveEstimate estimate;
  estimate.min_ratio = 1.0;
  double ratio_sum = 0.0;
  for (const TrialOutcome& outcome : outcomes) {
    if (outcome.degenerate) {
      ++estimate.degenerate_trials;
      continue;
    }
    estimate.min_ratio = std::min(estimate.min_ratio, outcome.ratio);
    ratio_sum += outcome.ratio;
    ++estimate.trials;
  }
  if (estimate.trials > 0) {
    estimate.mean_ratio = ratio_sum / estimate.trials;
  }
  return estimate;
}

}  // namespace ftoa
