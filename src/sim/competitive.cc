#include "sim/competitive.h"

#include <algorithm>
#include <vector>

#include "baselines/offline_opt.h"
#include "util/distributions.h"

namespace ftoa {

IidInstanceSampler::IidInstanceSampler(PredictionMatrix prediction,
                                       double velocity,
                                       double worker_duration,
                                       double task_duration)
    : prediction_(std::move(prediction)),
      velocity_(velocity),
      worker_duration_(worker_duration),
      task_duration_(task_duration) {}

Instance IidInstanceSampler::Sample(Rng* rng) const {
  const SpacetimeSpec& st = prediction_.spacetime();
  const GridSpec& grid = st.grid();
  const SlotSpec& slots = st.slots();

  std::vector<double> worker_weights(prediction_.workers().begin(),
                                     prediction_.workers().end());
  std::vector<double> task_weights(prediction_.tasks().begin(),
                                   prediction_.tasks().end());
  const DiscreteDistribution worker_types(worker_weights);
  const DiscreteDistribution task_types(task_weights);

  auto sample_object = [&](TypeId type, double duration, auto* object) {
    const int slot = st.SlotOfType(type);
    const CellId cell = st.AreaOfType(type);
    const int cx = grid.CellX(cell);
    const int cy = grid.CellY(cell);
    object->location = Point{(cx + rng->NextDouble()) * grid.cell_width(),
                             (cy + rng->NextDouble()) * grid.cell_height()};
    object->start =
        slots.SlotStart(slot) + rng->NextDouble() * slots.slot_duration();
    object->duration = duration;
  };

  std::vector<Worker> workers(
      static_cast<size_t>(prediction_.TotalWorkers()));
  for (Worker& w : workers) {
    sample_object(static_cast<TypeId>(worker_types.Sample(*rng)),
                  worker_duration_, &w);
  }
  std::vector<Task> tasks(static_cast<size_t>(prediction_.TotalTasks()));
  for (Task& r : tasks) {
    sample_object(static_cast<TypeId>(task_types.Sample(*rng)),
                  task_duration_, &r);
  }
  return Instance(st, velocity_, std::move(workers), std::move(tasks));
}

Result<CompetitiveEstimate> EstimateCompetitiveRatio(
    const IidInstanceSampler& sampler,
    const std::function<OnlineAlgorithm*()>& algorithm_factory, int trials,
    uint64_t seed) {
  if (trials <= 0) {
    return Status::InvalidArgument(
        "EstimateCompetitiveRatio: trials must be positive");
  }
  if (sampler.prediction().TotalWorkers() == 0 ||
      sampler.prediction().TotalTasks() == 0) {
    return Status::FailedPrecondition(
        "EstimateCompetitiveRatio: empty prediction");
  }
  Rng rng(seed);
  CompetitiveEstimate estimate;
  estimate.min_ratio = 1.0;
  double ratio_sum = 0.0;
  OfflineOpt opt;
  for (int trial = 0; trial < trials; ++trial) {
    Rng trial_rng = rng.Fork(static_cast<uint64_t>(trial) + 1);
    const Instance instance = sampler.Sample(&trial_rng);
    const size_t opt_size = opt.Run(instance).size();
    if (opt_size == 0) {
      ++estimate.degenerate_trials;
      continue;
    }
    OnlineAlgorithm* algorithm = algorithm_factory();
    const size_t online_size = algorithm->Run(instance).size();
    const double ratio =
        static_cast<double>(online_size) / static_cast<double>(opt_size);
    estimate.min_ratio = std::min(estimate.min_ratio, ratio);
    ratio_sum += ratio;
    ++estimate.trials;
  }
  if (estimate.trials > 0) {
    estimate.mean_ratio = ratio_sum / estimate.trials;
  }
  return estimate;
}

}  // namespace ftoa
