// Sharded streaming dispatch: the scale-out layer over the streaming
// AssignmentSession API. A ShardedDispatcher partitions an instance's
// object universe across K shards with a pluggable ShardRouter, opens one
// independent AssignmentSession per shard (all from one configured
// algorithm — the multi-session independence contract of
// core/online_algorithm.h), routes every worker/task arrival to its
// shard's session, and merges the per-shard assignments and traces into a
// single Assignment + aggregated RunMetrics. An optional post-merge
// boundary-reconciliation pass (sim/boundary_reconciler.h) recovers the
// cross-shard matches the partition forfeits.
//
// Execution model: with num_threads <= 1 every routed arrival is fed
// inline on the calling thread. With num_threads > 1 each shard is an
// actor fed in *batches*: routed arrivals accumulate in a caller-side
// per-shard staging buffer (no lock — only the caller touches it) and are
// handed to the shard's queue as one batch via a double-buffer swap under
// a single lock, amortizing the cross-thread synchronization over
// handoff_batch events. A batch is flushed when the staging buffer
// reaches handoff_batch events, when the caller declares a time boundary
// (AdvanceTo), and on Flush/Finish. A drain task on the shared
// util/thread_pool applies batches to the shard session, at most one
// drain task in flight per shard, so a shard's events always apply in
// arrival order while distinct shards run concurrently.
//
// Determinism contract: the merged assignment and trace depend only on the
// instance, the router, the shard count, and the reconcile switch — never
// on num_threads, handoff_batch, or the thread interleaving (per-shard
// event order is fixed and the merge walks shards in index order; batching
// changes *when* events cross the thread boundary, never their order).
// With num_shards == 1 every arrival reaches the single shard session in
// exact BuildArrivalStream order, so the merged output is bit-identical to
// the unsharded streaming/batch path (and reconciliation is a no-op — no
// border exists). With num_shards > 1 the output is deterministic but
// generally *different* from the single-session run: shards cannot match
// across the partition boundary and guide capacity is consumed per shard,
// trading matching size for per-decision latency and throughput;
// reconciliation wins part of that utility back (see
// docs/sharded_dispatch.md for the measured tradeoff).

#ifndef FTOA_SIM_SHARDED_DISPATCHER_H_
#define FTOA_SIM_SHARDED_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/online_algorithm.h"
#include "model/arrival_stream.h"
#include "model/instance.h"
#include "sim/boundary_reconciler.h"
#include "sim/metrics.h"
#include "sim/shard_router.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ftoa {

/// Dispatcher configuration.
struct ShardedOptions {
  /// Registry name of the algorithm each shard session runs
  /// (ShardedDispatcher::Create only; the wrapping constructor takes the
  /// algorithm object directly).
  std::string algorithm = "polar-op";

  int num_shards = 1;

  /// Worker threads driving the shard sessions. 1 feeds every shard
  /// inline on the calling thread; 0 = auto: min(num_shards, hardware
  /// concurrency) — oversubscribing cores with actor threads is pure
  /// scheduling overhead, so a single-core host degrades to inline.
  /// Clamped to num_shards (extra threads could never be busy).
  int num_threads = 1;

  ShardRouterKind router = ShardRouterKind::kGrid;

  /// Events staged per shard before the caller hands them to the shard
  /// queue as one batch (threaded mode only; inline mode has no handoff).
  /// 1 = the per-event handoff of the pre-batching dispatcher — one lock
  /// round-trip per event, which dominates end to end for ~100ns
  /// decisions. Clamped to >= 1. Never affects the merged output, only
  /// when events cross the thread boundary.
  int handoff_batch = 256;

  /// Run the post-merge boundary reconciliation pass: match objects left
  /// unmatched near shard borders across the partition (deterministic;
  /// a no-op at 1 shard). See sim/boundary_reconciler.h for the contract.
  bool reconcile = false;

  /// Every Nth decision per shard is individually timed (systematic
  /// sampling by per-shard decision ordinal — deterministic, thread-count
  /// independent); RunMetrics::decisions stays exact and busy_seconds is
  /// extrapolated from the sample. 1 = time every decision, which costs
  /// two clock reads per ~100ns decision on the serving path. Clamped
  /// to >= 1.
  int latency_sample_period = 8;

  /// Borrowed worker pool to run shard drains on instead of a dispatcher-
  /// owned pool (threaded mode only; ignored when the resolved num_threads
  /// is <= 1). Lets a host share one pool between shard actors and other
  /// work — the serving harness pairs this with a bounded PoolSlice for
  /// its background guide solves, so both sides draw from the same workers
  /// but the analytical side is capped (see util/thread_pool.h). The pool
  /// must outlive the dispatcher and every session it starts. Thread-count
  /// independence of the merged output is unaffected (the determinism
  /// contract above never depended on who owns the workers).
  ThreadPool* external_pool = nullptr;
};

/// What a finished sharded run produced.
struct ShardedRunResult {
  /// Merged assignment; pairs appear shard by shard in shard index order,
  /// each shard's pairs in its session decision order, followed by the
  /// reconciliation pass's recovered pairs (when enabled) in worker id
  /// order.
  Assignment assignment{0, 0};

  /// Merged trace (RunTrace::Absorb in shard index order).
  RunTrace trace;

  /// Aggregated metrics (MergeShardRunMetrics over shard_metrics; see
  /// sim/metrics.h for the field-by-field merge semantics — counters and
  /// busy_seconds sum, elapsed/percentiles max). The merged
  /// elapsed_seconds is the critical-path bound; Run() overwrites it with
  /// the measured wall clock of the whole replay.
  RunMetrics metrics;

  /// Per-shard breakdown, indexed by shard. elapsed_seconds ==
  /// busy_seconds per shard (a shard has no wall clock of its own).
  std::vector<RunMetrics> shard_metrics;

  /// Boundary-reconciliation breakdown (zeros when the pass is off).
  ReconcileStats reconcile;
};

/// One live sharded run: the streaming counterpart of AssignmentSession at
/// the dispatcher level. Arrival contract matches AssignmentSession
/// (nondecreasing times, each object fed once); calls must come from one
/// caller thread. Finish() may be called exactly once.
class ShardedSession {
 public:
  ~ShardedSession();

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  /// Forwards the dispatch-record switch to every shard session. Flip only
  /// before feeding arrivals.
  void set_collect_dispatches(bool collect);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardRouter& router() const { return *router_; }

  /// Routes the arrival to its shard session (inline, or into the shard's
  /// staging buffer in threaded mode). The per-decision latency recorded
  /// for the arrival is the shard session's decision time, measured on the
  /// thread that applies it.
  void OnWorker(WorkerId worker, double time);
  void OnTask(TaskId task, double time);

  /// Broadcast to every shard session (each shard only ever sees a subset
  /// of arrivals, so the no-earlier-than promise holds per shard too).
  /// A time boundary also flushes every staged batch: the declared
  /// progress reaches the shards immediately.
  void AdvanceTo(double time);

  /// Broadcasts a guide hot-swap (AssignmentSession::SwapGuide) to every
  /// shard session, ordered behind each shard's already-staged events like
  /// AdvanceTo — the swap lands at the same point of every shard's event
  /// order regardless of threading. Shards that adopt it are counted in
  /// their RunMetrics::guide_swaps. Call only at a time boundary.
  void SwapGuide(std::shared_ptr<const OfflineGuide> guide);

  /// Forces all deferred per-shard work (staged batches, batch-window
  /// tails, OPT's solve) and, in threaded mode, blocks until every shard
  /// queue has drained.
  void Flush();

  /// Flushes, finishes every shard session, merges, and (when configured)
  /// runs the boundary reconciliation pass. Fails with FailedPrecondition
  /// if two shards committed the same object — which a correct
  /// router/session pairing makes impossible, since each object is routed
  /// to exactly one shard.
  Result<ShardedRunResult> Finish();

 private:
  friend class ShardedDispatcher;

  /// One queued session call (threaded mode).
  struct Op {
    enum class Kind : uint8_t {
      kWorker,
      kTask,
      kAdvance,
      kFlush,
      kSwapGuide
    };
    Kind kind = Kind::kWorker;
    int32_t id = -1;
    double time = 0.0;
    /// kSwapGuide payload (null otherwise).
    std::shared_ptr<const OfflineGuide> guide;
  };

  struct Shard {
    std::unique_ptr<AssignmentSession> session;
    // Written only by the applying thread: exact decision count, adopted
    // guide swaps, and the systematically-sampled latency trace.
    int64_t decisions = 0;
    int64_t guide_swaps = 0;
    std::vector<int64_t> latency_ns;

    /// Caller-side staging buffer (threaded mode): touched only by the
    /// caller thread, handed to `pending` as one batch under the mutex.
    std::vector<Op> staging;

    // Actor state (threaded mode), guarded by `mutex`.
    std::mutex mutex;
    std::vector<Op> pending;
    bool draining = false;
    std::vector<Op> scratch;  // Drain task's swap target; owned by it.
  };

  ShardedSession(const Instance& instance, OnlineAlgorithm* algorithm,
                 std::unique_ptr<ShardRouter> router, ThreadPool* pool,
                 const ShardedOptions& options);

  void Route(ObjectKind kind, int32_t id, double time);
  /// Applies inline, or stages and hands off a full batch.
  void Stage(Shard& shard, Op op);
  /// Hands the staged batch to the shard queue (one lock, double-buffer
  /// swap when the queue is empty) and schedules a drain if none is live.
  void FlushStaging(Shard& shard);
  void Apply(Shard& shard, const Op& op);
  void Drain(Shard& shard);
  /// Blocks until no drain task is live (threaded mode; no-op inline).
  void Quiesce();

  const Instance* instance_;
  OnlineAlgorithm* algorithm_;  // Borrowed; outlives the session.
  std::unique_ptr<ShardRouter> router_;
  ThreadPool* pool_;  // Null = inline mode. Borrowed from the dispatcher.
  int handoff_batch_ = 1;
  bool reconcile_ = false;
  int latency_sample_period_ = 1;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  int live_drains_ = 0;  // Shards with a drain task scheduled or running.
  /// First exception a drain task died on (guarded by quiesce_mutex_);
  /// reported by Finish() as an Internal status — the pool future that
  /// would normally carry it is discarded.
  std::exception_ptr failure_;
  bool finished_ = false;
};

/// Routes arrivals across per-shard AssignmentSessions of one algorithm
/// and merges the results. Owns the worker pool shard sessions run on;
/// sessions borrow it, so a session must not outlive its dispatcher.
class ShardedDispatcher {
 public:
  /// Wraps a caller-owned algorithm (`algorithm` must outlive the
  /// dispatcher). Options' `algorithm` name is ignored on this path.
  ShardedDispatcher(OnlineAlgorithm* algorithm,
                    const ShardedOptions& options);

  /// Constructs options.algorithm through the algorithm registry and owns
  /// it. Fails like CreateAlgorithm (unknown name, missing guide) or on
  /// num_shards < 1.
  static Result<std::unique_ptr<ShardedDispatcher>> Create(
      const ShardedOptions& options, const AlgorithmDeps& deps = {});

  /// The thread count a dispatcher actually runs `requested` as: <= 0
  /// resolves to min(num_shards, hardware concurrency), anything else is
  /// clamped to [1, num_shards]. Exposed so front ends can report the
  /// resolved count without re-deriving the policy.
  static int ResolveNumThreads(int requested, int num_shards);

  const ShardedOptions& options() const { return options_; }
  OnlineAlgorithm* algorithm() const { return algorithm_; }

  /// Opens a sharded streaming session over `instance` (which must outlive
  /// the session).
  std::unique_ptr<ShardedSession> StartSession(const Instance& instance);

  /// Batch driver: replays the instance's arrival stream through one
  /// sharded session and merges. Wall time of the whole replay (routing +
  /// shard work + merge + reconciliation) lands in
  /// metrics.elapsed_seconds. Set `collect_dispatches` to false for pure
  /// measurement loops that discard the trace.
  Result<ShardedRunResult> Run(const Instance& instance,
                               bool collect_dispatches = true);

 private:
  ShardedOptions options_;
  std::unique_ptr<OnlineAlgorithm> owned_;  // Set on the Create path.
  OnlineAlgorithm* algorithm_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;  // Owned pool; null when an external
                                      // pool is lent or num_threads <= 1.
  ThreadPool* active_pool_ = nullptr;  // Owned or external; null = inline.
};

}  // namespace ftoa

#endif  // FTOA_SIM_SHARDED_DISPATCHER_H_
