// Sharded streaming dispatch: the scale-out layer over the streaming
// AssignmentSession API. A ShardedDispatcher partitions an instance's
// object universe across K shards with a pluggable ShardRouter, opens one
// independent AssignmentSession per shard (all from one configured
// algorithm — the multi-session independence contract of
// core/online_algorithm.h), routes every worker/task arrival to its
// shard's session, and merges the per-shard assignments and traces into a
// single Assignment + aggregated RunMetrics.
//
// Execution model: with num_threads <= 1 every routed arrival is fed
// inline on the calling thread. With num_threads > 1 each shard is an
// actor — arrivals are appended to the shard's FIFO queue and a drain task
// on the shared util/thread_pool feeds them to the shard session, at most
// one drain task in flight per shard, so a shard's events always apply in
// arrival order while distinct shards run concurrently.
//
// Determinism contract: the merged assignment and trace depend only on the
// instance, the router, and the shard count — never on num_threads or the
// thread interleaving (per-shard event order is fixed and the merge walks
// shards in index order). With num_shards == 1 every arrival reaches the
// single shard session in exact BuildArrivalStream order, so the merged
// output is bit-identical to the unsharded streaming/batch path. With
// num_shards > 1 the output is deterministic but generally *different*
// from the single-session run: shards cannot match across the partition
// boundary and guide capacity is consumed per shard, trading matching size
// for per-decision latency and throughput (see docs/sharded_dispatch.md
// for the measured tradeoff).

#ifndef FTOA_SIM_SHARDED_DISPATCHER_H_
#define FTOA_SIM_SHARDED_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/algorithm_registry.h"
#include "core/online_algorithm.h"
#include "model/arrival_stream.h"
#include "model/instance.h"
#include "sim/metrics.h"
#include "sim/shard_router.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ftoa {

/// Dispatcher configuration.
struct ShardedOptions {
  /// Registry name of the algorithm each shard session runs
  /// (ShardedDispatcher::Create only; the wrapping constructor takes the
  /// algorithm object directly).
  std::string algorithm = "polar-op";

  int num_shards = 1;

  /// Worker threads driving the shard sessions; <= 1 feeds every shard
  /// inline on the calling thread. Clamped to num_shards (extra threads
  /// could never be busy).
  int num_threads = 1;

  ShardRouterKind router = ShardRouterKind::kGrid;
};

/// What a finished sharded run produced.
struct ShardedRunResult {
  /// Merged assignment; pairs appear shard by shard in shard index order,
  /// each shard's pairs in its session decision order.
  Assignment assignment{0, 0};

  /// Merged trace (RunTrace::Absorb in shard index order).
  RunTrace trace;

  /// Aggregated metrics (MergeShardRunMetrics over shard_metrics; see
  /// sim/metrics.h for the field-by-field merge semantics). The
  /// elapsed_seconds of per-shard entries is the shard's *busy* time (sum
  /// of its decision latencies); callers measuring wall clock overwrite
  /// the merged value.
  RunMetrics metrics;

  /// Per-shard breakdown, indexed by shard.
  std::vector<RunMetrics> shard_metrics;
};

/// One live sharded run: the streaming counterpart of AssignmentSession at
/// the dispatcher level. Arrival contract matches AssignmentSession
/// (nondecreasing times, each object fed once); calls must come from one
/// caller thread. Finish() may be called exactly once.
class ShardedSession {
 public:
  ~ShardedSession();

  ShardedSession(const ShardedSession&) = delete;
  ShardedSession& operator=(const ShardedSession&) = delete;

  /// Forwards the dispatch-record switch to every shard session. Flip only
  /// before feeding arrivals.
  void set_collect_dispatches(bool collect);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardRouter& router() const { return *router_; }

  /// Routes the arrival to its shard session (inline, or onto the shard's
  /// queue in threaded mode). The per-decision latency recorded for the
  /// arrival is the shard session's decision time, measured on the thread
  /// that applies it.
  void OnWorker(WorkerId worker, double time);
  void OnTask(TaskId task, double time);

  /// Broadcast to every shard session (each shard only ever sees a subset
  /// of arrivals, so the no-earlier-than promise holds per shard too).
  void AdvanceTo(double time);

  /// Forces all deferred per-shard work (batch-window tails, OPT's solve)
  /// and, in threaded mode, blocks until every shard queue has drained.
  void Flush();

  /// Flushes, finishes every shard session, and merges. Fails with
  /// FailedPrecondition if two shards committed the same object — which a
  /// correct router/session pairing makes impossible, since each object is
  /// routed to exactly one shard.
  Result<ShardedRunResult> Finish();

 private:
  friend class ShardedDispatcher;

  /// One queued session call (threaded mode).
  struct Op {
    enum class Kind : uint8_t { kWorker, kTask, kAdvance, kFlush };
    Kind kind = Kind::kWorker;
    int32_t id = -1;
    double time = 0.0;
  };

  struct Shard {
    std::unique_ptr<AssignmentSession> session;
    std::vector<int64_t> latency_ns;  // Written only by the applying thread.

    // Actor state (threaded mode), guarded by `mutex`.
    std::mutex mutex;
    std::vector<Op> pending;
    bool draining = false;
    std::vector<Op> scratch;  // Drain task's swap target; owned by it.
  };

  ShardedSession(const Instance& instance, OnlineAlgorithm* algorithm,
                 std::unique_ptr<ShardRouter> router, ThreadPool* pool);

  void Route(ObjectKind kind, int32_t id, double time);
  void Submit(Shard& shard, Op op);
  void Apply(Shard& shard, const Op& op);
  void Drain(Shard& shard);
  /// Blocks until no drain task is live (threaded mode; no-op inline).
  void Quiesce();

  const Instance* instance_;
  std::string algorithm_name_;
  std::unique_ptr<ShardRouter> router_;
  ThreadPool* pool_;  // Null = inline mode. Borrowed from the dispatcher.
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  int live_drains_ = 0;  // Shards with a drain task scheduled or running.
  /// First exception a drain task died on (guarded by quiesce_mutex_);
  /// reported by Finish() as an Internal status — the pool future that
  /// would normally carry it is discarded.
  std::exception_ptr failure_;
  bool finished_ = false;
};

/// Routes arrivals across per-shard AssignmentSessions of one algorithm
/// and merges the results. Owns the worker pool shard sessions run on;
/// sessions borrow it, so a session must not outlive its dispatcher.
class ShardedDispatcher {
 public:
  /// Wraps a caller-owned algorithm (`algorithm` must outlive the
  /// dispatcher). Options' `algorithm` name is ignored on this path.
  ShardedDispatcher(OnlineAlgorithm* algorithm,
                    const ShardedOptions& options);

  /// Constructs options.algorithm through the algorithm registry and owns
  /// it. Fails like CreateAlgorithm (unknown name, missing guide) or on
  /// num_shards < 1.
  static Result<std::unique_ptr<ShardedDispatcher>> Create(
      const ShardedOptions& options, const AlgorithmDeps& deps = {});

  const ShardedOptions& options() const { return options_; }
  OnlineAlgorithm* algorithm() const { return algorithm_; }

  /// Opens a sharded streaming session over `instance` (which must outlive
  /// the session).
  std::unique_ptr<ShardedSession> StartSession(const Instance& instance);

  /// Batch driver: replays the instance's arrival stream through one
  /// sharded session and merges. Wall time of the whole replay (routing +
  /// shard work + merge) lands in metrics.elapsed_seconds. Set
  /// `collect_dispatches` to false for pure measurement loops that discard
  /// the trace.
  Result<ShardedRunResult> Run(const Instance& instance,
                               bool collect_dispatches = true);

 private:
  ShardedOptions options_;
  std::unique_ptr<OnlineAlgorithm> owned_;  // Set on the Create path.
  OnlineAlgorithm* algorithm_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;  // Null when num_threads <= 1.
};

}  // namespace ftoa

#endif  // FTOA_SIM_SHARDED_DISPATCHER_H_
