// Instance: a complete FTOA input — the realized worker and task streams
// plus the spatiotemporal discretization (slots x areas), the shared worker
// velocity, and convenience accessors used by algorithms and benches.

#ifndef FTOA_MODEL_INSTANCE_H_
#define FTOA_MODEL_INSTANCE_H_

#include <string>
#include <vector>

#include "model/task.h"
#include "model/worker.h"
#include "spatial/spacetime.h"
#include "util/status.h"

namespace ftoa {

/// A fully-specified FTOA problem instance.
class Instance {
 public:
  Instance() = default;

  /// Takes ownership of the object vectors. Worker/task ids are reassigned
  /// to their vector indices.
  Instance(SpacetimeSpec spacetime, double velocity,
           std::vector<Worker> workers, std::vector<Task> tasks);

  const SpacetimeSpec& spacetime() const { return spacetime_; }
  double velocity() const { return velocity_; }
  const std::vector<Worker>& workers() const { return workers_; }
  const std::vector<Task>& tasks() const { return tasks_; }

  const Worker& worker(WorkerId id) const {
    return workers_[static_cast<size_t>(id)];
  }
  const Task& task(TaskId id) const { return tasks_[static_cast<size_t>(id)]; }

  size_t num_workers() const { return workers_.size(); }
  size_t num_tasks() const { return tasks_.size(); }

  /// Largest task service window Dr in the instance (0 when empty).
  double MaxTaskDuration() const;
  /// Largest worker waiting time Dw in the instance (0 when empty).
  double MaxWorkerDuration() const;

  /// Checks structural invariants: ids match indices, non-negative times
  /// and durations, locations inside the region, starts within the horizon.
  Status Validate() const;

  /// Realized per-type counts of workers (first) and tasks (second) — the
  /// "ground truth" prediction matrices a_ij / b_ij. Each vector has
  /// spacetime().num_types() entries.
  std::pair<std::vector<int>, std::vector<int>> CountsPerType() const;

 private:
  SpacetimeSpec spacetime_;
  double velocity_ = 1.0;
  std::vector<Worker> workers_;
  std::vector<Task> tasks_;
};

}  // namespace ftoa

#endif  // FTOA_MODEL_INSTANCE_H_
