// Task (Definition 2): r = <Lr, Sr, Dr> is released at location Lr at time
// Sr and must be *served* (an assigned worker arrives at Lr) by Sr + Dr.

#ifndef FTOA_MODEL_TASK_H_
#define FTOA_MODEL_TASK_H_

#include <cstdint>

#include "spatial/point.h"

namespace ftoa {

/// Dense task identifier (index into Instance::tasks()).
using TaskId = int32_t;

/// An online task.
struct Task {
  TaskId id = -1;
  Point location;        ///< Fixed location Lr.
  double start = 0.0;    ///< Release time Sr.
  double duration = 0.0; ///< Service window Dr.

  /// Latest time by which an assigned worker must arrive at the task.
  double Deadline() const { return start + duration; }
};

}  // namespace ftoa

#endif  // FTOA_MODEL_TASK_H_
