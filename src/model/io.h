// Instance (de)serialization: a simple CSV-based interchange format so
// workloads can be generated once, archived, shared, and replayed —
// including feeding real platform exports into the algorithms.
//
// Format (one record per line):
//   ftoa-instance,1
//   spec,<width>,<height>,<cells_x>,<cells_y>,<horizon>,<slots>,<velocity>
//   worker,<x>,<y>,<start>,<duration>
//   task,<x>,<y>,<start>,<duration>
//   ...

#ifndef FTOA_MODEL_IO_H_
#define FTOA_MODEL_IO_H_

#include <string>

#include "model/instance.h"
#include "util/result.h"
#include "util/status.h"

namespace ftoa {

/// Writes `instance` to `path`; overwrites existing files.
Status SaveInstanceCsv(const Instance& instance, const std::string& path);

/// Reads an instance previously written by SaveInstanceCsv. Validates the
/// result before returning it.
Result<Instance> LoadInstanceCsv(const std::string& path);

}  // namespace ftoa

#endif  // FTOA_MODEL_IO_H_
