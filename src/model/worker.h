// Worker (Definition 1): w = <Lw, Sw, Dw> appears at location Lw at time Sw
// and leaves the platform at Sw + Dw unless assigned a task.

#ifndef FTOA_MODEL_WORKER_H_
#define FTOA_MODEL_WORKER_H_

#include <cstdint>

#include "spatial/point.h"

namespace ftoa {

/// Dense worker identifier (index into Instance::workers()).
using WorkerId = int32_t;

/// An online worker.
struct Worker {
  WorkerId id = -1;
  Point location;        ///< Initial location Lw.
  double start = 0.0;    ///< Appearance time Sw.
  double duration = 0.0; ///< Waiting time Dw.

  /// Time at which the worker leaves the platform if still unassigned.
  double Deadline() const { return start + duration; }
};

}  // namespace ftoa

#endif  // FTOA_MODEL_WORKER_H_
