// The online arrival order: workers and tasks appear on the platform one by
// one (Definition 4). The stream is the time-sorted merge of both object
// sets with a deterministic tie-break so runs are reproducible.

#ifndef FTOA_MODEL_ARRIVAL_STREAM_H_
#define FTOA_MODEL_ARRIVAL_STREAM_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"

namespace ftoa {

/// Which side of the bipartite instance an arrival belongs to.
enum class ObjectKind : uint8_t { kWorker = 0, kTask = 1 };

/// One arrival event.
struct ArrivalEvent {
  double time = 0.0;
  ObjectKind kind = ObjectKind::kWorker;
  int32_t index = -1;  ///< WorkerId or TaskId depending on kind.
};

/// Builds the arrival stream of `instance`, sorted by (time, kind, index).
/// Ties at equal times process workers before tasks (matching the paper's
/// Table 1 convention where the 9:00 worker precedes the 9:00 task).
std::vector<ArrivalEvent> BuildArrivalStream(const Instance& instance);

}  // namespace ftoa

#endif  // FTOA_MODEL_ARRIVAL_STREAM_H_
