#include "model/arrival_stream.h"

#include <algorithm>

namespace ftoa {

std::vector<ArrivalEvent> BuildArrivalStream(const Instance& instance) {
  std::vector<ArrivalEvent> events;
  events.reserve(instance.num_workers() + instance.num_tasks());
  for (const Worker& w : instance.workers()) {
    events.push_back(ArrivalEvent{w.start, ObjectKind::kWorker, w.id});
  }
  for (const Task& r : instance.tasks()) {
    events.push_back(ArrivalEvent{r.start, ObjectKind::kTask, r.id});
  }
  std::sort(events.begin(), events.end(),
            [](const ArrivalEvent& a, const ArrivalEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.index < b.index;
            });
  return events;
}

}  // namespace ftoa
