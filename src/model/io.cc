#include "model/io.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "util/csv.h"
#include "util/string_util.h"

namespace ftoa {

namespace {

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

Status SaveInstanceCsv(const Instance& instance, const std::string& path) {
  CsvWriter writer(path);
  if (!writer.Ok()) {
    return Status::IoError("SaveInstanceCsv: cannot open " + path);
  }
  FTOA_RETURN_NOT_OK(writer.WriteRow({"ftoa-instance", "1"}));
  const GridSpec& grid = instance.spacetime().grid();
  const SlotSpec& slots = instance.spacetime().slots();
  FTOA_RETURN_NOT_OK(writer.WriteRow(
      {"spec", FormatDouble(grid.width()), FormatDouble(grid.height()),
       std::to_string(grid.cells_x()), std::to_string(grid.cells_y()),
       FormatDouble(slots.horizon()), std::to_string(slots.num_slots()),
       FormatDouble(instance.velocity())}));
  for (const Worker& w : instance.workers()) {
    FTOA_RETURN_NOT_OK(writer.WriteRow(
        {"worker", FormatDouble(w.location.x), FormatDouble(w.location.y),
         FormatDouble(w.start), FormatDouble(w.duration)}));
  }
  for (const Task& r : instance.tasks()) {
    FTOA_RETURN_NOT_OK(writer.WriteRow(
        {"task", FormatDouble(r.location.x), FormatDouble(r.location.y),
         FormatDouble(r.start), FormatDouble(r.duration)}));
  }
  return writer.Close();
}

Result<Instance> LoadInstanceCsv(const std::string& path) {
  FTOA_ASSIGN_OR_RETURN(auto rows, CsvReadFile(path));
  if (rows.size() < 2 || rows[0].size() < 2 ||
      rows[0][0] != "ftoa-instance") {
    return Status::InvalidArgument(
        "LoadInstanceCsv: not an ftoa-instance file");
  }
  if (rows[0][1] != "1") {
    return Status::InvalidArgument("LoadInstanceCsv: unsupported version " +
                                   rows[0][1]);
  }
  if (rows[1].size() != 8 || rows[1][0] != "spec") {
    return Status::InvalidArgument("LoadInstanceCsv: missing spec row");
  }
  FTOA_ASSIGN_OR_RETURN(const double width, ParseDouble(rows[1][1]));
  FTOA_ASSIGN_OR_RETURN(const double height, ParseDouble(rows[1][2]));
  FTOA_ASSIGN_OR_RETURN(const int64_t cells_x, ParseInt(rows[1][3]));
  FTOA_ASSIGN_OR_RETURN(const int64_t cells_y, ParseInt(rows[1][4]));
  FTOA_ASSIGN_OR_RETURN(const double horizon, ParseDouble(rows[1][5]));
  FTOA_ASSIGN_OR_RETURN(const int64_t num_slots, ParseInt(rows[1][6]));
  FTOA_ASSIGN_OR_RETURN(const double velocity, ParseDouble(rows[1][7]));
  if (width <= 0.0 || height <= 0.0 || cells_x <= 0 || cells_y <= 0 ||
      horizon <= 0.0 || num_slots <= 0) {
    return Status::InvalidArgument("LoadInstanceCsv: invalid spec values");
  }

  std::vector<Worker> workers;
  std::vector<Task> tasks;
  for (size_t i = 2; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 5 || (row[0] != "worker" && row[0] != "task")) {
      return Status::InvalidArgument(
          "LoadInstanceCsv: malformed record at line " + std::to_string(i));
    }
    FTOA_ASSIGN_OR_RETURN(const double x, ParseDouble(row[1]));
    FTOA_ASSIGN_OR_RETURN(const double y, ParseDouble(row[2]));
    FTOA_ASSIGN_OR_RETURN(const double start, ParseDouble(row[3]));
    FTOA_ASSIGN_OR_RETURN(const double duration, ParseDouble(row[4]));
    if (row[0] == "worker") {
      workers.push_back(Worker{-1, {x, y}, start, duration});
    } else {
      tasks.push_back(Task{-1, {x, y}, start, duration});
    }
  }
  const GridSpec grid(width, height, static_cast<int>(cells_x),
                      static_cast<int>(cells_y));
  const SlotSpec slots(horizon, static_cast<int>(num_slots));
  Instance instance(SpacetimeSpec(slots, grid), velocity,
                    std::move(workers), std::move(tasks));
  FTOA_RETURN_NOT_OK(instance.Validate());
  return instance;
}

}  // namespace ftoa
