// Assignment M: the set of matched worker-task pairs produced by an online
// or offline algorithm, with the invariable constraint (pairs are never
// revoked) enforced structurally: a worker or task can be added once.

#ifndef FTOA_MODEL_ASSIGNMENT_H_
#define FTOA_MODEL_ASSIGNMENT_H_

#include <vector>

#include "model/feasibility.h"
#include "model/instance.h"
#include "util/status.h"

namespace ftoa {

/// One matched pair with its decision time (the moment the platform
/// committed the pair; used by strict verification and by tests).
struct MatchedPair {
  WorkerId worker = -1;
  TaskId task = -1;
  double time = 0.0;
};

/// A growing set of matched pairs with O(1) duplicate detection.
class Assignment {
 public:
  /// Sizes fix the id spaces of workers/tasks.
  Assignment(size_t num_workers, size_t num_tasks);

  /// Adds (worker, task) decided at `time`. Fails with FailedPrecondition if
  /// either side is already matched (invariable constraint).
  Status Add(WorkerId worker, TaskId task, double time);

  /// MaxSum(M): the number of matched pairs — the paper's objective.
  size_t size() const { return pairs_.size(); }

  const std::vector<MatchedPair>& pairs() const { return pairs_; }

  bool IsWorkerMatched(WorkerId worker) const {
    return worker_match_[static_cast<size_t>(worker)] >= 0;
  }
  bool IsTaskMatched(TaskId task) const {
    return task_match_[static_cast<size_t>(task)] >= 0;
  }

  /// Task matched to `worker`, or -1.
  TaskId MatchOfWorker(WorkerId worker) const {
    return worker_match_[static_cast<size_t>(worker)];
  }
  /// Worker matched to `task`, or -1.
  WorkerId MatchOfTask(TaskId task) const {
    return task_match_[static_cast<size_t>(task)];
  }

  /// Verifies every pair against `instance` under `policy`: ids in range,
  /// no duplicates (already structural), and the deadline constraint holds.
  /// Returns the first violation found.
  Status Validate(const Instance& instance, FeasibilityPolicy policy) const;

 private:
  std::vector<MatchedPair> pairs_;
  std::vector<TaskId> worker_match_;   // -1 when unmatched.
  std::vector<WorkerId> task_match_;   // -1 when unmatched.
};

}  // namespace ftoa

#endif  // FTOA_MODEL_ASSIGNMENT_H_
