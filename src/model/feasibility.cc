#include "model/feasibility.h"

#include <algorithm>

namespace ftoa {

bool CanServeAttrs(Point worker_loc, double worker_start,
                   double worker_duration, Point task_loc, double task_start,
                   double task_duration, double velocity,
                   FeasibilityPolicy policy) {
  // Deadline condition (1): the task appears before the worker leaves.
  if (!(task_start < worker_start + worker_duration)) return false;

  const double travel = TravelTime(worker_loc, task_loc, velocity);
  switch (policy) {
    case FeasibilityPolicy::kDispatchAtWorkerStart:
      // Deadline condition (2), exactly as written in Definition 4:
      // Dr - (Sw - Sr) - d(Lw, Lr) >= 0.
      return task_duration - (worker_start - task_start) - travel >= 0.0;
    case FeasibilityPolicy::kDispatchAtAssignmentTime: {
      const double depart = std::max(worker_start, task_start);
      return depart + travel <= task_start + task_duration;
    }
  }
  return false;
}

bool CanServe(const Worker& w, const Task& r, double velocity,
              FeasibilityPolicy policy) {
  return CanServeAttrs(w.location, w.start, w.duration, r.location, r.start,
                       r.duration, velocity, policy);
}

}  // namespace ftoa
