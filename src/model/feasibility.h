// The deadline constraint of Definition 4 under the two movement semantics
// discussed in DESIGN.md Section 2:
//
//  * kDispatchAtWorkerStart — the paper's written predicate. The worker is
//    credited with moving toward the task from its own start time Sw (it may
//    have been dispatched in advance by the offline guide):
//        Sr < Sw + Dw   and   Dr - (Sw - Sr) - d(Lw, Lr) >= 0.
//    Used by guide-based algorithms (POLAR family) and offline OPT.
//
//  * kDispatchAtAssignmentTime — wait-in-place semantics of the prior online
//    models: the worker only starts traveling when the match is decided, at
//    time max(Sw, Sr), so the arrival condition tightens to
//        max(Sw, Sr) + d(Lw, Lr) <= Sr + Dr,   and   Sr < Sw + Dw.
//    Used by SimpleGreedy and GR.

#ifndef FTOA_MODEL_FEASIBILITY_H_
#define FTOA_MODEL_FEASIBILITY_H_

#include "model/task.h"
#include "model/worker.h"
#include "spatial/point.h"

namespace ftoa {

/// Which movement semantics the deadline predicate assumes.
enum class FeasibilityPolicy {
  kDispatchAtWorkerStart,
  kDispatchAtAssignmentTime,
};

/// Travel time between two locations at the given speed (Definition 3).
/// Requires velocity > 0.
inline double TravelTime(Point from, Point to, double velocity) {
  return Distance(from, to) / velocity;
}

/// True iff worker `w` can serve task `r` under `policy`.
bool CanServe(const Worker& w, const Task& r, double velocity,
              FeasibilityPolicy policy);

/// The paper's predicate evaluated on raw attributes; shared by the
/// object-level and the guide's type-representative-level edge tests.
bool CanServeAttrs(Point worker_loc, double worker_start,
                   double worker_duration, Point task_loc, double task_start,
                   double task_duration, double velocity,
                   FeasibilityPolicy policy);

/// Upper bound on the distance between any feasible (w, r) pair given the
/// maximum task/worker durations; used for spatial pruning when enumerating
/// candidate edges. Conservative for both policies.
inline double MaxFeasibleDistance(double max_task_duration,
                                  double max_worker_duration,
                                  double velocity) {
  return (max_task_duration + max_worker_duration) * velocity;
}

}  // namespace ftoa

#endif  // FTOA_MODEL_FEASIBILITY_H_
