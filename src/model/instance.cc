#include "model/instance.h"

#include <algorithm>

namespace ftoa {

Instance::Instance(SpacetimeSpec spacetime, double velocity,
                   std::vector<Worker> workers, std::vector<Task> tasks)
    : spacetime_(spacetime),
      velocity_(velocity),
      workers_(std::move(workers)),
      tasks_(std::move(tasks)) {
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i].id = static_cast<WorkerId>(i);
  }
  for (size_t i = 0; i < tasks_.size(); ++i) {
    tasks_[i].id = static_cast<TaskId>(i);
  }
}

double Instance::MaxTaskDuration() const {
  double max_duration = 0.0;
  for (const Task& r : tasks_) {
    max_duration = std::max(max_duration, r.duration);
  }
  return max_duration;
}

double Instance::MaxWorkerDuration() const {
  double max_duration = 0.0;
  for (const Worker& w : workers_) {
    max_duration = std::max(max_duration, w.duration);
  }
  return max_duration;
}

Status Instance::Validate() const {
  if (velocity_ <= 0.0) {
    return Status::InvalidArgument("Instance: velocity must be positive");
  }
  const GridSpec& grid = spacetime_.grid();
  const double horizon = spacetime_.slots().horizon();
  for (size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = workers_[i];
    if (w.id != static_cast<WorkerId>(i)) {
      return Status::Internal("Instance: worker id does not match index");
    }
    if (w.start < 0.0 || w.duration < 0.0) {
      return Status::InvalidArgument("Instance: negative worker time");
    }
    if (w.start > horizon) {
      return Status::InvalidArgument(
          "Instance: worker start beyond the horizon");
    }
    if (!grid.Contains(grid.Clamp(w.location))) {
      return Status::InvalidArgument("Instance: worker outside the region");
    }
  }
  for (size_t i = 0; i < tasks_.size(); ++i) {
    const Task& r = tasks_[i];
    if (r.id != static_cast<TaskId>(i)) {
      return Status::Internal("Instance: task id does not match index");
    }
    if (r.start < 0.0 || r.duration < 0.0) {
      return Status::InvalidArgument("Instance: negative task time");
    }
    if (r.start > horizon) {
      return Status::InvalidArgument(
          "Instance: task start beyond the horizon");
    }
    if (!grid.Contains(grid.Clamp(r.location))) {
      return Status::InvalidArgument("Instance: task outside the region");
    }
  }
  return Status::OK();
}

std::pair<std::vector<int>, std::vector<int>> Instance::CountsPerType() const {
  std::vector<int> worker_counts(
      static_cast<size_t>(spacetime_.num_types()), 0);
  std::vector<int> task_counts(worker_counts.size(), 0);
  for (const Worker& w : workers_) {
    ++worker_counts[static_cast<size_t>(
        spacetime_.TypeOf(w.location, w.start))];
  }
  for (const Task& r : tasks_) {
    ++task_counts[static_cast<size_t>(
        spacetime_.TypeOf(r.location, r.start))];
  }
  return {std::move(worker_counts), std::move(task_counts)};
}

}  // namespace ftoa
