#include "model/assignment.h"

namespace ftoa {

Assignment::Assignment(size_t num_workers, size_t num_tasks)
    : worker_match_(num_workers, -1), task_match_(num_tasks, -1) {}

Status Assignment::Add(WorkerId worker, TaskId task, double time) {
  if (worker < 0 || static_cast<size_t>(worker) >= worker_match_.size()) {
    return Status::OutOfRange("Assignment: worker id out of range");
  }
  if (task < 0 || static_cast<size_t>(task) >= task_match_.size()) {
    return Status::OutOfRange("Assignment: task id out of range");
  }
  if (worker_match_[static_cast<size_t>(worker)] >= 0) {
    return Status::FailedPrecondition("Assignment: worker already matched");
  }
  if (task_match_[static_cast<size_t>(task)] >= 0) {
    return Status::FailedPrecondition("Assignment: task already matched");
  }
  worker_match_[static_cast<size_t>(worker)] = task;
  task_match_[static_cast<size_t>(task)] = worker;
  pairs_.push_back(MatchedPair{worker, task, time});
  return Status::OK();
}

Status Assignment::Validate(const Instance& instance,
                            FeasibilityPolicy policy) const {
  if (worker_match_.size() != instance.num_workers() ||
      task_match_.size() != instance.num_tasks()) {
    return Status::InvalidArgument(
        "Assignment: size does not match the instance");
  }
  for (const MatchedPair& pair : pairs_) {
    const Worker& w = instance.worker(pair.worker);
    const Task& r = instance.task(pair.task);
    if (!CanServe(w, r, instance.velocity(), policy)) {
      return Status::FailedPrecondition(
          "Assignment: pair (" + std::to_string(pair.worker) + ", " +
          std::to_string(pair.task) + ") violates the deadline constraint");
    }
  }
  return Status::OK();
}

}  // namespace ftoa
