#include "core/polar.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace ftoa {

namespace {

/// One POLAR run. All state of the old per-run loop lives here, so sessions
/// of one Polar object are independent.
class PolarSession final : public AssignmentSessionBase {
 public:
  PolarSession(const Instance& instance,
               std::shared_ptr<const OfflineGuide> guide,
               PolarOptions options)
      : AssignmentSessionBase(instance),
        guide_(std::move(guide)),
        options_(options),
        // Occupant object id per guide node, -1 while unoccupied (line 1:
        // mark all the nodes unoccupied).
        worker_node_occupant_(
            static_cast<size_t>(guide_->num_worker_nodes()), -1),
        task_node_occupant_(static_cast<size_t>(guide_->num_task_nodes()),
                            -1),
        // Next unused node per type: occupation hands nodes out in creation
        // order, making each arrival O(1).
        worker_type_cursor_(
            static_cast<size_t>(guide_->spacetime().num_types()), 0),
        task_type_cursor_(
            static_cast<size_t>(guide_->spacetime().num_types()), 0) {}

  void OnWorker(WorkerId worker, double time) override {
    const OfflineGuide& guide = *guide_;
    const SpacetimeSpec& st = guide.spacetime();
    const Worker& w = instance().worker(worker);
    const TypeId type = st.TypeOf(w.location, w.start);
    const auto& nodes = guide.WorkerNodesOfType(type);
    int32_t& cursor = worker_type_cursor_[static_cast<size_t>(type)];
    if (cursor >= static_cast<int32_t>(nodes.size())) {
      // No unoccupied node of this type: the object is ignored (the
      // prediction under-estimated this type).
      ++trace_.ignored_workers;
      return;
    }
    const GuideNodeId node = nodes[static_cast<size_t>(cursor++)];
    worker_node_occupant_[static_cast<size_t>(node)] = w.id;
    const GuideNodeId partner =
        guide.worker_nodes()[static_cast<size_t>(node)].partner;
    if (partner == -1) return;  // Unmatched in Ĝf: stay in place.
    const int32_t occupant =
        task_node_occupant_[static_cast<size_t>(partner)];
    if (occupant >= 0) {
      const Task& r = instance().task(occupant);
      const bool alive = !options_.check_liveness ||
                         CanServe(w, r, instance().velocity(),
                                  FeasibilityPolicy::kDispatchAtWorkerStart);
      if (alive && !assignment_.IsTaskMatched(r.id)) {
        assignment_.Add(w.id, r.id, time);
      }
    } else if (collect_dispatches()) {
      // Dispatch the worker toward the partner's area in advance.
      const TypeId target_type =
          guide.task_nodes()[static_cast<size_t>(partner)].type;
      trace_.dispatches.push_back(
          DispatchRecord{w.id, st.RepresentativeLocation(target_type), time});
    }
  }

  void OnTask(TaskId task, double time) override {
    const OfflineGuide& guide = *guide_;
    const SpacetimeSpec& st = guide.spacetime();
    const Task& r = instance().task(task);
    const TypeId type = st.TypeOf(r.location, r.start);
    const auto& nodes = guide.TaskNodesOfType(type);
    int32_t& cursor = task_type_cursor_[static_cast<size_t>(type)];
    if (cursor >= static_cast<int32_t>(nodes.size())) {
      ++trace_.ignored_tasks;
      return;
    }
    const GuideNodeId node = nodes[static_cast<size_t>(cursor++)];
    task_node_occupant_[static_cast<size_t>(node)] = r.id;
    const GuideNodeId partner =
        guide.task_nodes()[static_cast<size_t>(node)].partner;
    if (partner == -1) return;  // Unmatched in Ĝf: wait until deadline.
    const int32_t occupant =
        worker_node_occupant_[static_cast<size_t>(partner)];
    if (occupant >= 0) {
      const Worker& w = instance().worker(occupant);
      const bool alive = !options_.check_liveness ||
                         CanServe(w, r, instance().velocity(),
                                  FeasibilityPolicy::kDispatchAtWorkerStart);
      if (alive && !assignment_.IsWorkerMatched(w.id)) {
        assignment_.Add(w.id, r.id, time);
      }
    }
    // A waiting task issues no dispatch: its location is fixed.
  }

  bool SwapGuide(std::shared_ptr<const OfflineGuide> guide) override {
    if (guide == nullptr || guide->spacetime().num_types() !=
                                guide_->spacetime().num_types()) {
      return false;
    }
    guide_ = std::move(guide);
    // Occupancy and cursors are sized from (and index into) the guide:
    // rebuild them empty against the new one. Committed pairs stay.
    worker_node_occupant_.assign(
        static_cast<size_t>(guide_->num_worker_nodes()), -1);
    task_node_occupant_.assign(
        static_cast<size_t>(guide_->num_task_nodes()), -1);
    std::fill(worker_type_cursor_.begin(), worker_type_cursor_.end(), 0);
    std::fill(task_type_cursor_.begin(), task_type_cursor_.end(), 0);
    return true;
  }

 private:
  std::shared_ptr<const OfflineGuide> guide_;
  PolarOptions options_;
  std::vector<int32_t> worker_node_occupant_;
  std::vector<int32_t> task_node_occupant_;
  std::vector<int32_t> worker_type_cursor_;
  std::vector<int32_t> task_type_cursor_;
};

}  // namespace

Polar::Polar(std::shared_ptr<const OfflineGuide> guide, PolarOptions options)
    : guide_(std::move(guide)), options_(options) {}

std::unique_ptr<AssignmentSession> Polar::StartSession(
    const Instance& instance) {
  return std::make_unique<PolarSession>(instance, guide_, options_);
}

}  // namespace ftoa
