#include "core/polar.h"

#include <vector>

#include "model/arrival_stream.h"

namespace ftoa {

Polar::Polar(std::shared_ptr<const OfflineGuide> guide, PolarOptions options)
    : guide_(std::move(guide)), options_(options) {}

Assignment Polar::DoRun(const Instance& instance, RunTrace* trace) {
  const OfflineGuide& guide = *guide_;
  const SpacetimeSpec& st = guide.spacetime();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  // Occupant object id per guide node, -1 while unoccupied (line 1: mark all
  // the nodes unoccupied).
  std::vector<int32_t> worker_node_occupant(
      static_cast<size_t>(guide.num_worker_nodes()), -1);
  std::vector<int32_t> task_node_occupant(
      static_cast<size_t>(guide.num_task_nodes()), -1);
  // Next unused node per type: occupation hands nodes out in creation order,
  // making each arrival O(1).
  std::vector<int32_t> worker_type_cursor(
      static_cast<size_t>(st.num_types()), 0);
  std::vector<int32_t> task_type_cursor(static_cast<size_t>(st.num_types()),
                                        0);

  for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
    if (event.kind == ObjectKind::kWorker) {
      const Worker& w = instance.worker(event.index);
      const TypeId type = st.TypeOf(w.location, w.start);
      const auto& nodes = guide.WorkerNodesOfType(type);
      int32_t& cursor = worker_type_cursor[static_cast<size_t>(type)];
      if (cursor >= static_cast<int32_t>(nodes.size())) {
        // No unoccupied node of this type: the object is ignored (the
        // prediction under-estimated this type).
        if (trace != nullptr) ++trace->ignored_workers;
        continue;
      }
      const GuideNodeId node = nodes[static_cast<size_t>(cursor++)];
      worker_node_occupant[static_cast<size_t>(node)] = w.id;
      const GuideNodeId partner =
          guide.worker_nodes()[static_cast<size_t>(node)].partner;
      if (partner == -1) continue;  // Unmatched in Ĝf: stay in place.
      const int32_t occupant =
          task_node_occupant[static_cast<size_t>(partner)];
      if (occupant >= 0) {
        const Task& r = instance.task(occupant);
        const bool alive = !options_.check_liveness ||
                           CanServe(w, r, instance.velocity(),
                                    FeasibilityPolicy::kDispatchAtWorkerStart);
        if (alive && !assignment.IsTaskMatched(r.id)) {
          assignment.Add(w.id, r.id, event.time);
        }
      } else if (trace != nullptr) {
        // Dispatch the worker toward the partner's area in advance.
        const TypeId target_type =
            guide.task_nodes()[static_cast<size_t>(partner)].type;
        trace->dispatches.push_back(DispatchRecord{
            w.id, st.RepresentativeLocation(target_type), event.time});
      }
    } else {
      const Task& r = instance.task(event.index);
      const TypeId type = st.TypeOf(r.location, r.start);
      const auto& nodes = guide.TaskNodesOfType(type);
      int32_t& cursor = task_type_cursor[static_cast<size_t>(type)];
      if (cursor >= static_cast<int32_t>(nodes.size())) {
        if (trace != nullptr) ++trace->ignored_tasks;
        continue;
      }
      const GuideNodeId node = nodes[static_cast<size_t>(cursor++)];
      task_node_occupant[static_cast<size_t>(node)] = r.id;
      const GuideNodeId partner =
          guide.task_nodes()[static_cast<size_t>(node)].partner;
      if (partner == -1) continue;  // Unmatched in Ĝf: wait until deadline.
      const int32_t occupant =
          worker_node_occupant[static_cast<size_t>(partner)];
      if (occupant >= 0) {
        const Worker& w = instance.worker(occupant);
        const bool alive = !options_.check_liveness ||
                           CanServe(w, r, instance.velocity(),
                                    FeasibilityPolicy::kDispatchAtWorkerStart);
        if (alive && !assignment.IsWorkerMatched(w.id)) {
          assignment.Add(w.id, r.id, event.time);
        }
      }
      // A waiting task issues no dispatch: its location is fixed.
    }
  }
  return assignment;
}

}  // namespace ftoa
