#include "core/polar_op.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

namespace ftoa {

namespace {

/// FIFO of objects waiting at a guide node, with O(1) push/pop via a head
/// cursor (no element erasure).
struct WaitQueue {
  std::vector<int32_t> items;
  size_t head = 0;

  bool empty() const { return head >= items.size(); }
  void Push(int32_t id) { items.push_back(id); }
  int32_t Pop() { return items[head++]; }
  int32_t Peek() const { return items[head]; }
};

/// One POLAR-OP run: the per-node wait queues and the round-robin cursors
/// of the old per-run loop, hoisted into session state.
class PolarOpSession final : public AssignmentSessionBase {
 public:
  PolarOpSession(const Instance& instance,
                 std::shared_ptr<const OfflineGuide> guide,
                 PolarOptions options)
      : AssignmentSessionBase(instance),
        guide_(std::move(guide)),
        options_(options),
        // Unmatched objects waiting at each guide node ("associated"
        // objects that have not yet been paired).
        waiting_at_worker_node_(
            static_cast<size_t>(guide_->num_worker_nodes())),
        waiting_at_task_node_(static_cast<size_t>(guide_->num_task_nodes())),
        // Round-robin cursor per type: nodes are reused, so arrivals cycle
        // over all nodes of the type (line 3: "a node of o's type").
        worker_type_cursor_(
            static_cast<size_t>(guide_->spacetime().num_types()), 0),
        task_type_cursor_(
            static_cast<size_t>(guide_->spacetime().num_types()), 0) {}

  void OnWorker(WorkerId worker, double time) override {
    const OfflineGuide& guide = *guide_;
    const SpacetimeSpec& st = guide.spacetime();
    const Worker& w = instance().worker(worker);
    const TypeId type = st.TypeOf(w.location, w.start);
    const auto& nodes = guide.WorkerNodesOfType(type);
    if (nodes.empty()) {
      // No node of this type exists in the guide: the object is ignored.
      ++trace_.ignored_workers;
      return;
    }
    uint32_t& cursor = worker_type_cursor_[static_cast<size_t>(type)];
    const GuideNodeId node =
        nodes[static_cast<size_t>(cursor++ % nodes.size())];
    const GuideNodeId partner =
        guide.worker_nodes()[static_cast<size_t>(node)].partner;
    if (partner == -1) return;  // Stays in place; never matched by Ĝf.
    WaitQueue& queue = waiting_at_task_node_[static_cast<size_t>(partner)];
    bool matched = false;
    while (!queue.empty()) {
      const int32_t task_id = queue.Peek();
      const Task& r = instance().task(task_id);
      if (options_.check_liveness &&
          !CanServe(w, r, instance().velocity(),
                    FeasibilityPolicy::kDispatchAtWorkerStart)) {
        queue.Pop();  // Expired waiting task; discard and keep looking.
        continue;
      }
      queue.Pop();
      assignment_.Add(w.id, r.id, time);
      matched = true;
      break;
    }
    if (!matched) {
      waiting_at_worker_node_[static_cast<size_t>(node)].Push(w.id);
      if (collect_dispatches()) {
        const TypeId target_type =
            guide.task_nodes()[static_cast<size_t>(partner)].type;
        trace_.dispatches.push_back(DispatchRecord{
            w.id, st.RepresentativeLocation(target_type), time});
      }
    }
  }

  void OnTask(TaskId task, double time) override {
    const OfflineGuide& guide = *guide_;
    const SpacetimeSpec& st = guide.spacetime();
    const Task& r = instance().task(task);
    const TypeId type = st.TypeOf(r.location, r.start);
    const auto& nodes = guide.TaskNodesOfType(type);
    if (nodes.empty()) {
      ++trace_.ignored_tasks;
      return;
    }
    uint32_t& cursor = task_type_cursor_[static_cast<size_t>(type)];
    const GuideNodeId node =
        nodes[static_cast<size_t>(cursor++ % nodes.size())];
    const GuideNodeId partner =
        guide.task_nodes()[static_cast<size_t>(node)].partner;
    if (partner == -1) return;  // Waits until its deadline; never matched.
    WaitQueue& queue = waiting_at_worker_node_[static_cast<size_t>(partner)];
    bool matched = false;
    while (!queue.empty()) {
      const int32_t worker_id = queue.Peek();
      const Worker& w = instance().worker(worker_id);
      if (options_.check_liveness &&
          !CanServe(w, r, instance().velocity(),
                    FeasibilityPolicy::kDispatchAtWorkerStart)) {
        queue.Pop();  // The waiting worker has left the platform.
        continue;
      }
      queue.Pop();
      assignment_.Add(w.id, r.id, time);
      matched = true;
      break;
    }
    if (!matched) {
      waiting_at_task_node_[static_cast<size_t>(node)].Push(r.id);
    }
  }

  bool SwapGuide(std::shared_ptr<const OfflineGuide> guide) override {
    if (guide == nullptr || guide->spacetime().num_types() !=
                                guide_->spacetime().num_types()) {
      return false;
    }
    guide_ = std::move(guide);
    // Wait queues hang off guide nodes; with the node set replaced, the
    // still-waiting objects are released (they re-enter only if the caller
    // replays them, as the serving harness's carryover does).
    waiting_at_worker_node_.assign(
        static_cast<size_t>(guide_->num_worker_nodes()), WaitQueue{});
    waiting_at_task_node_.assign(
        static_cast<size_t>(guide_->num_task_nodes()), WaitQueue{});
    std::fill(worker_type_cursor_.begin(), worker_type_cursor_.end(), 0u);
    std::fill(task_type_cursor_.begin(), task_type_cursor_.end(), 0u);
    return true;
  }

 private:
  std::shared_ptr<const OfflineGuide> guide_;
  PolarOptions options_;
  std::vector<WaitQueue> waiting_at_worker_node_;
  std::vector<WaitQueue> waiting_at_task_node_;
  std::vector<uint32_t> worker_type_cursor_;
  std::vector<uint32_t> task_type_cursor_;
};

}  // namespace

PolarOp::PolarOp(std::shared_ptr<const OfflineGuide> guide,
                 PolarOptions options)
    : guide_(std::move(guide)), options_(options) {}

std::unique_ptr<AssignmentSession> PolarOp::StartSession(
    const Instance& instance) {
  return std::make_unique<PolarOpSession>(instance, guide_, options_);
}

}  // namespace ftoa
