#include "core/polar_op.h"

#include <vector>

#include "model/arrival_stream.h"

namespace ftoa {

namespace {

/// FIFO of objects waiting at a guide node, with O(1) push/pop via a head
/// cursor (no element erasure).
struct WaitQueue {
  std::vector<int32_t> items;
  size_t head = 0;

  bool empty() const { return head >= items.size(); }
  void Push(int32_t id) { items.push_back(id); }
  int32_t Pop() { return items[head++]; }
  int32_t Peek() const { return items[head]; }
};

}  // namespace

PolarOp::PolarOp(std::shared_ptr<const OfflineGuide> guide,
                 PolarOptions options)
    : guide_(std::move(guide)), options_(options) {}

Assignment PolarOp::DoRun(const Instance& instance, RunTrace* trace) {
  const OfflineGuide& guide = *guide_;
  const SpacetimeSpec& st = guide.spacetime();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  // Unmatched objects waiting at each guide node ("associated" objects that
  // have not yet been paired).
  std::vector<WaitQueue> waiting_at_worker_node(
      static_cast<size_t>(guide.num_worker_nodes()));
  std::vector<WaitQueue> waiting_at_task_node(
      static_cast<size_t>(guide.num_task_nodes()));
  // Round-robin cursor per type: nodes are reused, so arrivals cycle over
  // all nodes of the type (line 3: "a node of o's type").
  std::vector<uint32_t> worker_type_cursor(
      static_cast<size_t>(st.num_types()), 0);
  std::vector<uint32_t> task_type_cursor(static_cast<size_t>(st.num_types()),
                                         0);

  const double velocity = instance.velocity();

  for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
    if (event.kind == ObjectKind::kWorker) {
      const Worker& w = instance.worker(event.index);
      const TypeId type = st.TypeOf(w.location, w.start);
      const auto& nodes = guide.WorkerNodesOfType(type);
      if (nodes.empty()) {
        // No node of this type exists in the guide: the object is ignored.
        if (trace != nullptr) ++trace->ignored_workers;
        continue;
      }
      uint32_t& cursor = worker_type_cursor[static_cast<size_t>(type)];
      const GuideNodeId node =
          nodes[static_cast<size_t>(cursor++ % nodes.size())];
      const GuideNodeId partner =
          guide.worker_nodes()[static_cast<size_t>(node)].partner;
      if (partner == -1) continue;  // Stays in place; never matched by Ĝf.
      WaitQueue& queue = waiting_at_task_node[static_cast<size_t>(partner)];
      bool matched = false;
      while (!queue.empty()) {
        const int32_t task_id = queue.Peek();
        const Task& r = instance.task(task_id);
        if (options_.check_liveness &&
            !CanServe(w, r, velocity,
                      FeasibilityPolicy::kDispatchAtWorkerStart)) {
          queue.Pop();  // Expired waiting task; discard and keep looking.
          continue;
        }
        queue.Pop();
        assignment.Add(w.id, r.id, event.time);
        matched = true;
        break;
      }
      if (!matched) {
        waiting_at_worker_node[static_cast<size_t>(node)].Push(w.id);
        if (trace != nullptr) {
          const TypeId target_type =
              guide.task_nodes()[static_cast<size_t>(partner)].type;
          trace->dispatches.push_back(DispatchRecord{
              w.id, st.RepresentativeLocation(target_type), event.time});
        }
      }
    } else {
      const Task& r = instance.task(event.index);
      const TypeId type = st.TypeOf(r.location, r.start);
      const auto& nodes = guide.TaskNodesOfType(type);
      if (nodes.empty()) {
        if (trace != nullptr) ++trace->ignored_tasks;
        continue;
      }
      uint32_t& cursor = task_type_cursor[static_cast<size_t>(type)];
      const GuideNodeId node =
          nodes[static_cast<size_t>(cursor++ % nodes.size())];
      const GuideNodeId partner =
          guide.task_nodes()[static_cast<size_t>(node)].partner;
      if (partner == -1) continue;  // Waits until its deadline; never matched.
      WaitQueue& queue = waiting_at_worker_node[static_cast<size_t>(partner)];
      bool matched = false;
      while (!queue.empty()) {
        const int32_t worker_id = queue.Peek();
        const Worker& w = instance.worker(worker_id);
        if (options_.check_liveness &&
            !CanServe(w, r, velocity,
                      FeasibilityPolicy::kDispatchAtWorkerStart)) {
          queue.Pop();  // The waiting worker has left the platform.
          continue;
        }
        queue.Pop();
        assignment.Add(w.id, r.id, event.time);
        matched = true;
        break;
      }
      if (!matched) {
        waiting_at_task_node[static_cast<size_t>(node)].Push(r.id);
      }
    }
  }
  return assignment;
}

}  // namespace ftoa
