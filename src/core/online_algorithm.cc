#include "core/online_algorithm.h"

#include "model/arrival_stream.h"

namespace ftoa {

void RunTrace::Absorb(RunTrace&& other) {
  if (dispatches.empty()) {
    dispatches = std::move(other.dispatches);
  } else {
    dispatches.insert(dispatches.end(), other.dispatches.begin(),
                      other.dispatches.end());
  }
  ignored_workers += other.ignored_workers;
  ignored_tasks += other.ignored_tasks;
  matcher_rebuilds += other.matcher_rebuilds;
  matcher_augment_searches += other.matcher_augment_searches;
  retrieval.Absorb(other.retrieval);
}

Assignment OnlineAlgorithm::Run(const Instance& instance, RunTrace* trace) {
  const std::unique_ptr<AssignmentSession> session = StartSession(instance);
  // Without a trace sink the dispatch records would be dropped on the
  // floor; skip materializing them (the pre-session API's nullptr path).
  if (trace == nullptr) session->set_collect_dispatches(false);
  for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
    if (event.kind == ObjectKind::kWorker) {
      session->OnWorker(event.index, event.time);
    } else {
      session->OnTask(event.index, event.time);
    }
  }
  SessionResult result = session->Finish();
  if (trace != nullptr) trace->Absorb(std::move(result.trace));
  return std::move(result.assignment);
}

}  // namespace ftoa
