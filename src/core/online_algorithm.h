// The common interface of all online task-assignment algorithms compared in
// the paper's evaluation (SimpleGreedy, GR, TGOA, POLAR, POLAR-OP) plus the
// offline OPT reference.
//
// The paper's algorithms are *online*: they decide per arrival. The API is
// therefore built around a streaming session model. StartSession() opens an
// AssignmentSession over an instance's object universe; the caller feeds
// arrivals one by one (OnWorker / OnTask), optionally advances time for the
// batched baselines (AdvanceTo / Flush), and Finish() yields the Assignment
// together with the RunTrace of decisions. The classic whole-instance
// Run() remains as a non-virtual driver that replays the instance's arrival
// stream through one session — so batch replay and live streaming are
// bit-identical by construction.

#ifndef FTOA_CORE_ONLINE_ALGORITHM_H_
#define FTOA_CORE_ONLINE_ALGORITHM_H_

#include <memory>
#include <string>
#include <utility>

#include "model/assignment.h"
#include "model/feasibility.h"
#include "model/instance.h"
#include "retrieval/stats.h"
#include "spatial/point.h"

namespace ftoa {

class OfflineGuide;

/// A "go to this area" instruction issued to an idle worker (Algorithm 2/3
/// line "dispatch o to go to the area of r").
struct DispatchRecord {
  WorkerId worker = -1;
  Point target;        ///< Representative location of the target area.
  double time = 0.0;   ///< When the instruction was issued (= Sw).
};

/// Side-channel of algorithm decisions beyond the assignment.
struct RunTrace {
  std::vector<DispatchRecord> dispatches;

  /// Objects dropped because no guide node of their type existed
  /// (under-prediction; "the object is ignored", Section 5.1).
  int64_t ignored_workers = 0;
  int64_t ignored_tasks = 0;

  /// Matching-engine instrumentation for the batched baselines (TGOA, GR):
  /// how many times a matcher was (re)built from scratch. The incremental
  /// carry-across-batches mode keeps this at 0; the rebuild-per-batch
  /// reference mode increments it once per batch/trial.
  int64_t matcher_rebuilds = 0;
  /// Augmenting-path searches run by the incremental matcher.
  int64_t matcher_augment_searches = 0;

  /// Candidate-retrieval instrumentation, populated by sessions running
  /// with RetrievalMode::kEngine (their cursors write straight into this
  /// sink). All-zero for the reference scan paths.
  RetrievalStats retrieval;

  /// Accumulates `other` into this trace (dispatches appended, counters
  /// added) — the aggregation Run() applies to a caller-supplied trace.
  void Absorb(RunTrace&& other);
};

/// What a finished session produced.
struct SessionResult {
  Assignment assignment;
  RunTrace trace;
};

/// One live streaming run of an algorithm over a fixed object universe.
///
/// Usage contract:
///  - Arrivals are fed in nondecreasing time order; at equal times workers
///    precede tasks and lower ids precede higher ones (the deterministic
///    order of BuildArrivalStream). Each object is fed at most once, at its
///    start time.
///  - AdvanceTo(t) promises that no arrival earlier than t will follow; the
///    batched baselines use it to close windows whose boundary has passed.
///    It is optional — feeding an arrival implies AdvanceTo(its time).
///  - Flush() forces all deferred work (e.g. the remaining batch windows)
///    as if the stream had ended. Finish() implies Flush() and may be
///    called exactly once; the session is dead afterwards.
///
/// Sessions own all their mutable state: several sessions of one algorithm
/// object are fully independent and may be interleaved or run on different
/// threads (one thread per session).
class AssignmentSession {
 public:
  virtual ~AssignmentSession() = default;

  /// Switches collection of per-worker DispatchRecords (on by default: a
  /// live dispatcher must emit the relocation commands). Pure measurement
  /// loops that discard the trace turn it off to keep the no-trace path
  /// allocation-free — Run() does so when called without a trace sink.
  /// Flip only before feeding arrivals; decisions never depend on it.
  void set_collect_dispatches(bool collect) { collect_dispatches_ = collect; }
  bool collect_dispatches() const { return collect_dispatches_; }

  /// Feeds the arrival of worker `worker` at time `time` (= its start).
  virtual void OnWorker(WorkerId worker, double time) = 0;

  /// Feeds the arrival of task `task` at time `time` (= its start).
  virtual void OnTask(TaskId task, double time) = 0;

  /// Declares that no arrival earlier than `time` will be fed. Batched
  /// algorithms process every window boundary strictly before `time`;
  /// per-arrival algorithms ignore it.
  virtual void AdvanceTo(double time) { (void)time; }

  /// Adopts a freshly generated guide mid-stream (the serving harness's
  /// hot refresh). Only meaningful at an AdvanceTo boundary: call between
  /// arrivals, never concurrently with OnWorker/OnTask.
  ///
  /// Semantics for guided sessions: pairs already committed stay; all
  /// guide-*dependent* state (node occupancy, wait queues, per-type
  /// cursors) is rebuilt empty against the new guide, so decisions from
  /// here on are exactly those of a fresh session fed the remaining
  /// stream. Returns false — leaving the session untouched — when the
  /// session does not follow a guide (the baselines' default) or the new
  /// guide's spacetime discretization is incompatible with the session's.
  virtual bool SwapGuide(std::shared_ptr<const OfflineGuide> guide) {
    (void)guide;
    return false;
  }

  /// Ends the arrival stream logically: all deferred work (remaining batch
  /// windows, pending pools) is carried out now.
  virtual void Flush() {}

  /// Flushes and returns the assignment plus the decision trace. Call once.
  virtual SessionResult Finish() = 0;

 private:
  bool collect_dispatches_ = true;
};

/// Convenience base for session implementations: holds the universal state
/// (instance, growing assignment, trace) and implements Finish as
/// Flush-then-move-out.
class AssignmentSessionBase : public AssignmentSession {
 public:
  explicit AssignmentSessionBase(const Instance& instance)
      : instance_(&instance),
        assignment_(instance.num_workers(), instance.num_tasks()) {}

  SessionResult Finish() override {
    Flush();
    return SessionResult{std::move(assignment_), std::move(trace_)};
  }

 protected:
  const Instance& instance() const { return *instance_; }

  const Instance* instance_;
  Assignment assignment_;
  RunTrace trace_;
};

/// Base class of every algorithm under evaluation. Algorithm objects carry
/// only configuration (options, the shared guide); all per-run state lives
/// in the sessions they start.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  /// Display name used by benches and EXPERIMENTS.md ("POLAR-OP", ...).
  virtual std::string name() const = 0;

  /// Object-level deadline policy this algorithm's committed pairs honor —
  /// the predicate any *external* pass adding pairs on the algorithm's
  /// behalf (the sharded dispatcher's boundary reconciliation,
  /// sim/boundary_reconciler) must also satisfy. The default is the
  /// paper's written predicate (kDispatchAtWorkerStart, used by the POLAR
  /// family and OPT); the wait-in-place baselines override with their
  /// configured policy.
  virtual FeasibilityPolicy feasibility_policy() const {
    return FeasibilityPolicy::kDispatchAtWorkerStart;
  }

  /// The offline guide the algorithm matches along, or nullptr for the
  /// guide-free baselines. External passes use it to stay within the
  /// guide's per-type-pair capacity (OfflineGuide's matched-pair
  /// accounting) when adding pairs for a guided algorithm.
  virtual const OfflineGuide* guide() const { return nullptr; }

  /// Opens a streaming session over `instance`'s object universe. The
  /// instance must outlive the session. Sessions are independent; starting
  /// a new one never disturbs sessions already running.
  virtual std::unique_ptr<AssignmentSession> StartSession(
      const Instance& instance) = 0;

  /// Batch replay: drives the instance's arrival stream through one session
  /// and returns the assignment. `trace` may be nullptr; when given, the
  /// session's trace is absorbed into it. Runs must be deterministic, and
  /// are bit-identical to feeding the same stream by hand.
  Assignment Run(const Instance& instance, RunTrace* trace = nullptr);
};

}  // namespace ftoa

#endif  // FTOA_CORE_ONLINE_ALGORITHM_H_
