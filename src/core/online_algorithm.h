// The common interface of all online task-assignment algorithms compared in
// the paper's evaluation (SimpleGreedy, GR, POLAR, POLAR-OP) plus the
// offline OPT reference. An algorithm consumes an Instance's arrival stream
// and produces an Assignment; it may additionally emit a RunTrace with the
// worker-dispatch decisions for strict post-hoc verification.

#ifndef FTOA_CORE_ONLINE_ALGORITHM_H_
#define FTOA_CORE_ONLINE_ALGORITHM_H_

#include <string>

#include "model/assignment.h"
#include "model/instance.h"
#include "spatial/point.h"

namespace ftoa {

/// A "go to this area" instruction issued to an idle worker (Algorithm 2/3
/// line "dispatch o to go to the area of r").
struct DispatchRecord {
  WorkerId worker = -1;
  Point target;        ///< Representative location of the target area.
  double time = 0.0;   ///< When the instruction was issued (= Sw).
};

/// Optional side-channel of algorithm decisions beyond the assignment.
struct RunTrace {
  std::vector<DispatchRecord> dispatches;

  /// Objects dropped because no guide node of their type existed
  /// (under-prediction; "the object is ignored", Section 5.1).
  int64_t ignored_workers = 0;
  int64_t ignored_tasks = 0;

  /// Matching-engine instrumentation for the batched baselines (TGOA, GR):
  /// how many times a matcher was (re)built from scratch. The incremental
  /// carry-across-batches mode keeps this at 0; the rebuild-per-batch
  /// reference mode increments it once per batch/trial.
  int64_t matcher_rebuilds = 0;
  /// Augmenting-path searches run by the incremental matcher.
  int64_t matcher_augment_searches = 0;
};

/// Base class of every algorithm under evaluation.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  /// Display name used by benches and EXPERIMENTS.md ("POLAR-OP", ...).
  virtual std::string name() const = 0;

  /// Processes the instance's arrival stream and returns the assignment.
  /// `trace` may be nullptr. Runs must be deterministic.
  Assignment Run(const Instance& instance, RunTrace* trace = nullptr) {
    return DoRun(instance, trace);
  }

  /// Implementation hook (non-virtual-interface pattern: call Run()).
  virtual Assignment DoRun(const Instance& instance, RunTrace* trace) = 0;
};

}  // namespace ftoa

#endif  // FTOA_CORE_ONLINE_ALGORITHM_H_
