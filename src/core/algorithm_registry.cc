#include "core/algorithm_registry.h"

#include "baselines/offline_opt.h"
#include "core/hybrid_polar_op.h"
#include "core/polar_op.h"
#include "util/string_util.h"

namespace ftoa {

std::vector<std::string> AllAlgorithmNames() {
  return {"simple-greedy", "gr",         "tgoa", "polar",
          "polar-op",      "polar-op-g", "opt"};
}

bool AlgorithmNeedsGuide(const std::string& name) {
  return name == "polar" || name == "polar-op" || name == "polar-op-g";
}

std::string AlgorithmDisplayName(const std::string& name) {
  if (name == "simple-greedy") return "SimpleGreedy";
  if (name == "gr") return "GR";
  if (name == "tgoa") return "TGOA";
  if (name == "polar") return "POLAR";
  if (name == "polar-op") return "POLAR-OP";
  if (name == "polar-op-g") return "POLAR-OP+G";
  if (name == "opt") return "OPT";
  return "";
}

Result<std::unique_ptr<OnlineAlgorithm>> CreateAlgorithm(
    const std::string& name, const AlgorithmDeps& deps) {
  if (AlgorithmNeedsGuide(name) && deps.guide == nullptr) {
    return Status::InvalidArgument("algorithm '" + name +
                                   "' requires an offline guide "
                                   "(AlgorithmDeps::guide is null)");
  }
  // The master switch only ever upgrades to the engine; per-struct settings
  // survive when it is left at the kLinear default.
  const bool engine = deps.retrieval == RetrievalMode::kEngine;
  if (name == "simple-greedy") {
    SimpleGreedyOptions options = deps.simple_greedy_options;
    if (engine) options.retrieval = RetrievalMode::kEngine;
    return std::unique_ptr<OnlineAlgorithm>(new SimpleGreedy(options));
  }
  if (name == "gr") {
    return std::unique_ptr<OnlineAlgorithm>(new GrBatch(deps.gr_options));
  }
  if (name == "tgoa") {
    TgoaOptions options = deps.tgoa_options;
    if (engine) options.retrieval = RetrievalMode::kEngine;
    return std::unique_ptr<OnlineAlgorithm>(new Tgoa(options));
  }
  if (name == "polar") {
    return std::unique_ptr<OnlineAlgorithm>(
        new Polar(deps.guide, deps.polar_options));
  }
  if (name == "polar-op") {
    return std::unique_ptr<OnlineAlgorithm>(
        new PolarOp(deps.guide, deps.polar_options));
  }
  if (name == "polar-op-g") {
    PolarOptions options = deps.polar_options;
    if (engine) options.retrieval = RetrievalMode::kEngine;
    return std::unique_ptr<OnlineAlgorithm>(
        new HybridPolarOp(deps.guide, options));
  }
  if (name == "opt") {
    return std::unique_ptr<OnlineAlgorithm>(new OfflineOpt());
  }
  return Status::NotFound("unknown algorithm: " + name + " (valid: " +
                          Join(AllAlgorithmNames(), ", ") + ")");
}

}  // namespace ftoa
