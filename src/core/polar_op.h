// POLAR-OP (paper Algorithm 3): POLAR with node reuse. Arriving objects
// *associate* with a guide node of their type — several objects may share a
// node — so objects beyond the predicted counts are no longer dropped, which
// lifts the competitive ratio to ~0.47 (Theorem 2) while keeping O(1)
// processing per arrival. Node selection within a type is round-robin and
// waiting objects queue FIFO per node.

#ifndef FTOA_CORE_POLAR_OP_H_
#define FTOA_CORE_POLAR_OP_H_

#include <memory>

#include "core/guide.h"
#include "core/online_algorithm.h"
#include "core/polar.h"

namespace ftoa {

/// The POLAR-OP algorithm. Sessions share the (immutable) guide.
class PolarOp : public OnlineAlgorithm {
 public:
  explicit PolarOp(std::shared_ptr<const OfflineGuide> guide,
                   PolarOptions options = {});

  std::string name() const override { return "POLAR-OP"; }
  const OfflineGuide* guide() const override { return guide_.get(); }

  std::unique_ptr<AssignmentSession> StartSession(
      const Instance& instance) override;

 private:
  std::shared_ptr<const OfflineGuide> guide_;
  PolarOptions options_;
};

}  // namespace ftoa

#endif  // FTOA_CORE_POLAR_OP_H_
