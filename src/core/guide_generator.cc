#include "core/guide_generator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <future>
#include <numeric>
#include <utility>
#include <vector>

#include "flow/dinic.h"
#include "flow/ford_fulkerson.h"
#include "flow/min_cost_flow.h"
#include "model/feasibility.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace ftoa {

const std::vector<std::string>& AllGuideRefreshModeNames() {
  static const std::vector<std::string> kNames = {"cold", "warm"};
  return kNames;
}

const char* GuideRefreshModeName(GuideRefreshMode mode) {
  switch (mode) {
    case GuideRefreshMode::kCold:
      return "cold";
    case GuideRefreshMode::kWarm:
      return "warm";
  }
  return "unknown";
}

Result<GuideRefreshMode> ParseGuideRefreshMode(const std::string& name) {
  if (name == "cold") return GuideRefreshMode::kCold;
  if (name == "warm") return GuideRefreshMode::kWarm;
  return Status::NotFound("unknown refresh mode \"" + name + "\" (valid: " +
                          Join(AllGuideRefreshModeNames(), ", ") + ")");
}

namespace {

/// FNV-1a over 64-bit words — the warm cache's content hash. Collisions are
/// harmless (membership is confirmed by full sequence comparison); the hash
/// only has to make lookups cheap.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

inline uint64_t FnvStep(uint64_t h, uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

inline uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

}  // namespace

GuideGenerator::GuideGenerator(double velocity, GuideOptions options)
    : velocity_(velocity), options_(options) {}

GuideGenerator::~GuideGenerator() = default;

GuideGenerator::ShardArena& GuideGenerator::ShardAt(size_t index) const {
  while (shards_.size() <= index) {
    shards_.push_back(std::make_unique<ShardArena>());
  }
  return *shards_[index];
}

ThreadPool& GuideGenerator::Pool() const {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  return *pool_;
}

void GuideGenerator::InvalidateWarmCache() const {
  warm_cache_ = WarmCache{};
}

void GuideGenerator::ForEachFeasibleTypePair(
    const PredictionMatrix& prediction,
    const std::function<void(TypeId, TypeId)>& fn) const {
  const SpacetimeSpec& st = prediction.spacetime();
  const GridSpec& grid = st.grid();
  const SlotSpec& slots = st.slots();
  const int num_areas = st.num_areas();
  const double dw = options_.worker_duration;
  const double dr = options_.task_duration;
  const double rep_slack = options_.representative_slack;

  // Per-slot list of cells with predicted tasks, for sparse iteration when
  // the feasibility disk covers most of the grid.
  std::vector<std::vector<CellId>> task_cells_by_slot(
      static_cast<size_t>(slots.num_slots()));
  for (int slot = 0; slot < slots.num_slots(); ++slot) {
    for (CellId cell = 0; cell < num_areas; ++cell) {
      if (prediction.tasks_at(st.TypeAt(slot, cell)) > 0) {
        task_cells_by_slot[static_cast<size_t>(slot)].push_back(cell);
      }
    }
  }

  for (int wslot = 0; wslot < slots.num_slots(); ++wslot) {
    const double sw = slots.SlotMidpoint(wslot);
    // Candidate task slots: representatives must satisfy
    //   sr < sw + dw (+ slack)  and  dr - (sw - sr) (+ slack) >= 0.
    const int slot_lo = std::max(
        0, slots.SlotOf(std::max(0.0, sw - dr - rep_slack)) - 1);
    const int slot_hi = std::min(slots.num_slots() - 1,
                                 slots.SlotOf(sw + dw + rep_slack) + 1);

    for (CellId wcell = 0; wcell < num_areas; ++wcell) {
      const TypeId wtype = st.TypeAt(wslot, wcell);
      if (prediction.workers_at(wtype) <= 0) continue;
      const Point wloc = grid.CellCenter(wcell);

      for (int tslot = slot_lo; tslot <= slot_hi; ++tslot) {
        const double sr = slots.SlotMidpoint(tslot);
        if (!(sr < sw + dw + rep_slack)) continue;
        const double slack = dr - (sw - sr) + rep_slack;
        if (slack < 0.0) continue;
        const double radius = slack * velocity_;

        // Choose between scanning the bounding box of the feasibility disk
        // and scanning the slot's nonempty task cells, whichever is smaller.
        // std::floor before the int cast so each bound is the disk edge's
        // true cell index even when (wloc - radius) is negative. With the
        // current clamps the cast alone happens to agree (trunc and floor
        // differ only below zero, where max(0, ...) erases the difference),
        // but that equivalence is incidental — floor states the intended
        // semantics instead of relying on it.
        const int cx_lo = std::max(
            0, static_cast<int>(
                   std::floor((wloc.x - radius) / grid.cell_width())));
        const int cx_hi = std::min(
            grid.cells_x() - 1,
            static_cast<int>(
                std::floor((wloc.x + radius) / grid.cell_width())));
        const int cy_lo = std::max(
            0, static_cast<int>(
                   std::floor((wloc.y - radius) / grid.cell_height())));
        const int cy_hi = std::min(
            grid.cells_y() - 1,
            static_cast<int>(
                std::floor((wloc.y + radius) / grid.cell_height())));
        const int64_t box_cells = static_cast<int64_t>(cx_hi - cx_lo + 1) *
                                  (cy_hi - cy_lo + 1);
        const auto& sparse = task_cells_by_slot[static_cast<size_t>(tslot)];

        auto consider = [&](CellId tcell) {
          const TypeId ttype = st.TypeAt(tslot, tcell);
          if (prediction.tasks_at(ttype) <= 0) return;
          const double d = Distance(wloc, grid.CellCenter(tcell));
          if (d / velocity_ <= slack) fn(wtype, ttype);
        };

        if (box_cells <= static_cast<int64_t>(sparse.size())) {
          for (int cy = cy_lo; cy <= cy_hi; ++cy) {
            for (int cx = cx_lo; cx <= cx_hi; ++cx) {
              consider(grid.CellAt(cx, cy));
            }
          }
        } else {
          for (CellId tcell : sparse) consider(tcell);
        }
      }
    }
  }
}

int64_t GuideGenerator::EstimateNodeLevelEdges(
    const PredictionMatrix& prediction) const {
  int64_t edges = 0;
  ForEachFeasibleTypePair(prediction, [&](TypeId wt, TypeId tt) {
    edges += static_cast<int64_t>(prediction.workers_at(wt)) *
             prediction.tasks_at(tt);
  });
  return edges;
}

namespace {

/// Instantiates all predicted nodes into `guide`; returns the first guide
/// node id per type so callers can translate (type, ordinal) -> node id.
struct InstantiatedNodes {
  std::vector<GuideNodeId> first_worker_node;  // Per type, -1 when empty.
  std::vector<GuideNodeId> first_task_node;
};

InstantiatedNodes InstantiateNodes(const PredictionMatrix& prediction,
                                   OfflineGuide* guide) {
  const int num_types = prediction.spacetime().num_types();
  InstantiatedNodes out;
  out.first_worker_node.assign(static_cast<size_t>(num_types), -1);
  out.first_task_node.assign(static_cast<size_t>(num_types), -1);
  for (TypeId type = 0; type < num_types; ++type) {
    const int32_t workers = prediction.workers_at(type);
    for (int32_t k = 0; k < workers; ++k) {
      const GuideNodeId id = guide->AddWorkerNode(type);
      if (k == 0) out.first_worker_node[static_cast<size_t>(type)] = id;
    }
    const int32_t tasks = prediction.tasks_at(type);
    for (int32_t k = 0; k < tasks; ++k) {
      const GuideNodeId id = guide->AddTaskNode(type);
      if (k == 0) out.first_task_node[static_cast<size_t>(type)] = id;
    }
  }
  return out;
}

}  // namespace

Result<OfflineGuide> GuideGenerator::GenerateNodeLevel(
    const PredictionMatrix& prediction, bool use_dinic) const {
  // The node-level network has no component decomposition to diff, so it
  // always runs cold (docs/flow_engines.md documents the fallback).
  last_refresh_stats_ = GuideRefreshStats{};
  const int64_t m = prediction.TotalWorkers();
  const int64_t n = prediction.TotalTasks();
  const int64_t node_edges = EstimateNodeLevelEdges(prediction);
  if (m + n + 2 > (1LL << 30) || node_edges > (1LL << 28)) {
    return Status::InvalidArgument(
        "GuideGenerator: node-level network too large; use kCompressed");
  }

  OfflineGuide guide(prediction.spacetime(), velocity_,
                     options_.worker_duration, options_.task_duration,
                     options_.representative_slack);
  const InstantiatedNodes nodes = InstantiateNodes(prediction, &guide);

  // Network layout: source 0, worker nodes 1..m, task nodes m+1..m+n,
  // sink m+n+1 (Algorithm 1 lines 1-5). The edge arena and the solver
  // scratch live in the generator and are reused across calls.
  const NodeId source = 0;
  const NodeId sink = static_cast<NodeId>(m + n + 1);
  ShardArena& arena = ShardAt(0);
  FlowGraph& network = arena.maxflow;
  network.Reset(static_cast<NodeId>(m + n + 2));
  network.ReserveEdges(static_cast<size_t>(m + n + node_edges));
  for (int64_t w = 0; w < m; ++w) {
    network.AddEdge(source, static_cast<NodeId>(1 + w), 1);
  }
  for (int64_t r = 0; r < n; ++r) {
    network.AddEdge(static_cast<NodeId>(1 + m + r), sink, 1);
  }

  // Lines 6-9: one edge per feasible (worker node, task node) pair. Nodes of
  // a type are contiguous in the guide, so we expand per feasible type pair.
  std::vector<EdgeId> pair_edges;
  std::vector<std::pair<GuideNodeId, GuideNodeId>> pair_nodes;
  ForEachFeasibleTypePair(prediction, [&](TypeId wt, TypeId tt) {
    const GuideNodeId w0 = nodes.first_worker_node[static_cast<size_t>(wt)];
    const GuideNodeId r0 = nodes.first_task_node[static_cast<size_t>(tt)];
    const int32_t wc = prediction.workers_at(wt);
    const int32_t tc = prediction.tasks_at(tt);
    for (int32_t wi = 0; wi < wc; ++wi) {
      for (int32_t ti = 0; ti < tc; ++ti) {
        const EdgeId e = network.AddEdge(
            static_cast<NodeId>(1 + w0 + wi),
            static_cast<NodeId>(1 + m + r0 + ti), 1);
        pair_edges.push_back(e);
        pair_nodes.emplace_back(w0 + wi, r0 + ti);
      }
    }
  });

  // Line 10: max flow.
  if (use_dinic) {
    arena.dinic.Solve(&network, source, sink);
  } else {
    FordFulkersonMaxFlow(&network, source, sink);
  }

  for (size_t k = 0; k < pair_edges.size(); ++k) {
    if (network.Flow(pair_edges[k]) > 0) {
      FTOA_RETURN_NOT_OK(
          guide.MatchNodes(pair_nodes[k].first, pair_nodes[k].second));
    }
  }
  return guide;
}

Result<OfflineGuide> GuideGenerator::GenerateCompressed(
    const PredictionMatrix& prediction, bool minimize_cost) const {
  const SpacetimeSpec& st = prediction.spacetime();
  const int num_types = st.num_types();

  // Feasible type pairs in the deterministic enumeration order, thinned by
  // the approximate-mode Bernoulli sample *before* component decomposition
  // — the sampled pair list is what defines the components, so the
  // thread-count invariance of the solve below is untouched by sampling.
  struct TypePairEdge {
    TypeId worker_type;
    TypeId task_type;
  };
  std::vector<TypePairEdge> pairs;
  ApproxGuideReport report;
  {
    const double rate = options_.approx_sample_rate;
    Rng sampler(options_.approx_seed);
    ForEachFeasibleTypePair(prediction, [&](TypeId wt, TypeId tt) {
      ++report.feasible_pairs;
      if (rate < 1.0 && !sampler.NextBool(rate)) {
        // A dropped pair can carry at most min(supply, demand) flow — the
        // per-pair capacity of the exact network.
        report.utility_loss_bound +=
            std::min<int64_t>(prediction.workers_at(wt),
                              prediction.tasks_at(tt));
        return;
      }
      ++report.sampled_pairs;
      pairs.push_back(TypePairEdge{wt, tt});
    });
  }
  last_approx_report_ = report;

  // Dense type id -> compact network node id, assigned on first use over
  // the (sampled) pair list.
  std::vector<int32_t> worker_node_of_type(static_cast<size_t>(num_types),
                                           -1);
  std::vector<int32_t> task_node_of_type(static_cast<size_t>(num_types), -1);
  std::vector<TypeId> worker_types;
  std::vector<TypeId> task_types;
  for (const TypePairEdge& pair : pairs) {
    if (worker_node_of_type[static_cast<size_t>(pair.worker_type)] < 0) {
      worker_node_of_type[static_cast<size_t>(pair.worker_type)] =
          static_cast<int32_t>(worker_types.size());
      worker_types.push_back(pair.worker_type);
    }
    if (task_node_of_type[static_cast<size_t>(pair.task_type)] < 0) {
      task_node_of_type[static_cast<size_t>(pair.task_type)] =
          static_cast<int32_t>(task_types.size());
      task_types.push_back(pair.task_type);
    }
  }

  const int32_t wcount = static_cast<int32_t>(worker_types.size());
  const int32_t tcount = static_cast<int32_t>(task_types.size());

  OfflineGuide guide(st, velocity_, options_.worker_duration,
                     options_.task_duration,
                     options_.representative_slack);
  const InstantiatedNodes nodes = InstantiateNodes(prediction, &guide);

  // ---- Connected-component decomposition. Compact worker node i and
  // compact task node j live at union-find indices i and wcount + j.
  // Components are independent flow problems: every source/sink edge is
  // private to its type node, so no augmenting path crosses components and
  // solving them separately is exact.
  std::vector<int32_t> parent(static_cast<size_t>(wcount + tcount));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int32_t x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  for (const TypePairEdge& pair : pairs) {
    const int32_t a =
        find(worker_node_of_type[static_cast<size_t>(pair.worker_type)]);
    const int32_t b = find(
        wcount + task_node_of_type[static_cast<size_t>(pair.task_type)]);
    if (a != b) parent[static_cast<size_t>(b)] = a;
  }

  // Component ids in first-appearance order over the pair list, so the
  // decomposition — and with it the chunking below — is deterministic.
  std::vector<int32_t> comp_of_root(static_cast<size_t>(wcount + tcount),
                                    -1);
  std::vector<int32_t> pair_comp(pairs.size());
  int32_t num_components = 0;
  for (size_t k = 0; k < pairs.size(); ++k) {
    const int32_t root = find(
        worker_node_of_type[static_cast<size_t>(pairs[k].worker_type)]);
    if (comp_of_root[static_cast<size_t>(root)] < 0) {
      comp_of_root[static_cast<size_t>(root)] = num_components++;
    }
    pair_comp[k] = comp_of_root[static_cast<size_t>(root)];
  }
  last_num_components_ = num_components;

  // Group pairs and compact nodes by component with counting sorts that
  // preserve the original order within each component.
  auto group_by_comp = [num_components](const std::vector<int32_t>& comp_of,
                                        std::vector<int32_t>* begin,
                                        std::vector<int32_t>* items) {
    begin->assign(static_cast<size_t>(num_components) + 1, 0);
    for (const int32_t c : comp_of) ++(*begin)[static_cast<size_t>(c) + 1];
    for (int32_t c = 0; c < num_components; ++c) {
      (*begin)[static_cast<size_t>(c) + 1] += (*begin)[static_cast<size_t>(c)];
    }
    items->resize(comp_of.size());
    std::vector<int32_t> cursor(begin->begin(), begin->end() - 1);
    for (size_t i = 0; i < comp_of.size(); ++i) {
      (*items)[static_cast<size_t>(
          cursor[static_cast<size_t>(comp_of[i])]++)] =
          static_cast<int32_t>(i);
    }
  };

  std::vector<int32_t> comp_pair_begin;
  std::vector<int32_t> comp_pairs;  // Pair indices grouped by component.
  group_by_comp(pair_comp, &comp_pair_begin, &comp_pairs);

  std::vector<int32_t> comp_of_worker(static_cast<size_t>(wcount));
  for (int32_t i = 0; i < wcount; ++i) {
    comp_of_worker[static_cast<size_t>(i)] =
        comp_of_root[static_cast<size_t>(find(i))];
  }
  std::vector<int32_t> comp_of_task(static_cast<size_t>(tcount));
  for (int32_t j = 0; j < tcount; ++j) {
    comp_of_task[static_cast<size_t>(j)] =
        comp_of_root[static_cast<size_t>(find(wcount + j))];
  }
  std::vector<int32_t> comp_worker_begin;
  std::vector<int32_t> comp_workers;  // Compact worker ids by component.
  group_by_comp(comp_of_worker, &comp_worker_begin, &comp_workers);
  std::vector<int32_t> comp_task_begin;
  std::vector<int32_t> comp_tasks;  // Compact task ids by component.
  group_by_comp(comp_of_task, &comp_task_begin, &comp_tasks);

  // Local (within-component) network node id of each compact node.
  std::vector<int32_t> local_worker_id(static_cast<size_t>(wcount));
  for (int32_t c = 0; c < num_components; ++c) {
    for (int32_t p = comp_worker_begin[static_cast<size_t>(c)];
         p < comp_worker_begin[static_cast<size_t>(c) + 1]; ++p) {
      local_worker_id[static_cast<size_t>(comp_workers[static_cast<size_t>(
          p)])] = p - comp_worker_begin[static_cast<size_t>(c)];
    }
  }
  std::vector<int32_t> local_task_id(static_cast<size_t>(tcount));
  for (int32_t c = 0; c < num_components; ++c) {
    for (int32_t p = comp_task_begin[static_cast<size_t>(c)];
         p < comp_task_begin[static_cast<size_t>(c) + 1]; ++p) {
      local_task_id[static_cast<size_t>(comp_tasks[static_cast<size_t>(
          p)])] = p - comp_task_begin[static_cast<size_t>(c)];
    }
  }

  // ---- Warm cache lookup. A component's local network is fully determined
  // by its pair sequence: local node ids are first-use ranks within the
  // component's pairs, capacities come from the per-type predicted counts,
  // and edge costs are a pure function of the type ids (representative
  // locations) under a fixed geometry. So a component whose (worker type,
  // task type, worker count, task count) sequence matches a cached
  // component from the previous call — verified element-wise, the hash only
  // routes the lookup — would rebuild the *identical* network, and its
  // cached flows are exactly what a fresh solve would return. Those
  // components take their flows from the cache and skip the solve below;
  // only dirty components solve, from scratch on the persistent arenas
  // (injecting warm flows into a dirty component is NOT done: it could
  // steer the solver to a different equally-optimal flow pattern and break
  // the warm == cold bit-identity contract).
  const bool warm = options_.refresh_mode == GuideRefreshMode::kWarm;
  GuideRefreshStats refresh_stats;
  refresh_stats.components_total = num_components;
  refresh_stats.pairs_total = static_cast<int64_t>(pairs.size());

  uint64_t fingerprint = kFnvOffset;
  {
    const GridSpec& grid = st.grid();
    fingerprint = FnvStep(fingerprint, static_cast<uint64_t>(num_types));
    fingerprint =
        FnvStep(fingerprint, static_cast<uint64_t>(st.num_slots()));
    fingerprint = FnvStep(fingerprint, static_cast<uint64_t>(grid.cells_x()));
    fingerprint = FnvStep(fingerprint, static_cast<uint64_t>(grid.cells_y()));
    fingerprint = FnvStep(fingerprint, DoubleBits(grid.cell_width()));
    fingerprint = FnvStep(fingerprint, DoubleBits(grid.cell_height()));
    fingerprint = FnvStep(fingerprint, DoubleBits(velocity_));
  }

  // Per component: start of its cached flow slice, or -1 when dirty.
  std::vector<int64_t> cached_begin;
  std::vector<uint64_t> comp_hash;
  if (warm) {
    cached_begin.assign(static_cast<size_t>(num_components), -1);
    comp_hash.assign(static_cast<size_t>(num_components), 0);
    const bool cache_usable = warm_cache_.valid &&
                              warm_cache_.minimize_cost == minimize_cost &&
                              warm_cache_.fingerprint == fingerprint;
    for (int32_t c = 0; c < num_components; ++c) {
      const int32_t p_lo = comp_pair_begin[static_cast<size_t>(c)];
      const int32_t p_hi = comp_pair_begin[static_cast<size_t>(c) + 1];
      uint64_t h = kFnvOffset;
      for (int32_t p = p_lo; p < p_hi; ++p) {
        const TypePairEdge& pair =
            pairs[static_cast<size_t>(comp_pairs[static_cast<size_t>(p)])];
        h = FnvStep(h, static_cast<uint64_t>(pair.worker_type));
        h = FnvStep(h, static_cast<uint64_t>(pair.task_type));
        h = FnvStep(h, static_cast<uint64_t>(
                           prediction.workers_at(pair.worker_type)));
        h = FnvStep(h, static_cast<uint64_t>(
                           prediction.tasks_at(pair.task_type)));
      }
      comp_hash[static_cast<size_t>(c)] = h;
      if (!cache_usable) continue;
      const auto it = warm_cache_.by_hash.find(h);
      if (it == warm_cache_.by_hash.end()) continue;
      for (const int32_t entry_index : it->second) {
        const WarmCache::Entry& entry =
            warm_cache_.entries[static_cast<size_t>(entry_index)];
        if (entry.count != p_hi - p_lo) continue;
        bool equal = true;
        for (int32_t p = p_lo; p < p_hi && equal; ++p) {
          const size_t at = static_cast<size_t>(entry.begin + (p - p_lo));
          const TypePairEdge& pair =
              pairs[static_cast<size_t>(comp_pairs[static_cast<size_t>(p)])];
          equal = warm_cache_.pair_wt[at] == pair.worker_type &&
                  warm_cache_.pair_tt[at] == pair.task_type &&
                  warm_cache_.pair_wcap[at] ==
                      prediction.workers_at(pair.worker_type) &&
                  warm_cache_.pair_tcap[at] ==
                      prediction.tasks_at(pair.task_type);
        }
        if (equal) {
          cached_begin[static_cast<size_t>(c)] = entry.begin;
          break;
        }
      }
    }
  }

  // ---- Solve every component on a shard arena; per-pair flows land in a
  // shared array indexed by the *original* pair index, so the merge below
  // is independent of which thread solved which component.
  std::vector<int64_t> pair_flow(pairs.size(), 0);

  if (warm) {
    for (int32_t c = 0; c < num_components; ++c) {
      const int64_t begin = cached_begin[static_cast<size_t>(c)];
      if (begin < 0) continue;
      const int32_t p_lo = comp_pair_begin[static_cast<size_t>(c)];
      const int32_t p_hi = comp_pair_begin[static_cast<size_t>(c) + 1];
      for (int32_t p = p_lo; p < p_hi; ++p) {
        pair_flow[static_cast<size_t>(comp_pairs[static_cast<size_t>(p)])] =
            warm_cache_.pair_flow[static_cast<size_t>(begin + (p - p_lo))];
      }
      ++refresh_stats.components_reused;
      refresh_stats.pairs_reused += p_hi - p_lo;
    }
  }

  auto solve_components = [&](int32_t comp_lo, int32_t comp_hi,
                              ShardArena* arena) {
    std::vector<int32_t> edge_ids;  // Pair-edge ids of the current network.
    for (int32_t c = comp_lo; c < comp_hi; ++c) {
      if (warm && cached_begin[static_cast<size_t>(c)] >= 0) continue;
      const int32_t w_lo = comp_worker_begin[static_cast<size_t>(c)];
      const int32_t t_lo = comp_task_begin[static_cast<size_t>(c)];
      const int32_t cw =
          comp_worker_begin[static_cast<size_t>(c) + 1] - w_lo;
      const int32_t ct = comp_task_begin[static_cast<size_t>(c) + 1] - t_lo;
      const int32_t p_lo = comp_pair_begin[static_cast<size_t>(c)];
      const int32_t p_hi = comp_pair_begin[static_cast<size_t>(c) + 1];
      const int32_t source = 0;
      const int32_t sink = 1 + cw + ct;

      edge_ids.clear();
      edge_ids.reserve(static_cast<size_t>(p_hi - p_lo));
      auto add_supply_edges = [&](auto& network, auto add_edge) {
        for (int32_t p = w_lo; p < w_lo + cw; ++p) {
          const TypeId type = worker_types[static_cast<size_t>(
              comp_workers[static_cast<size_t>(p)])];
          add_edge(network, source, 1 + (p - w_lo),
                   static_cast<int64_t>(prediction.workers_at(type)));
        }
        for (int32_t p = t_lo; p < t_lo + ct; ++p) {
          const TypeId type = task_types[static_cast<size_t>(
              comp_tasks[static_cast<size_t>(p)])];
          add_edge(network, 1 + cw + (p - t_lo), sink,
                   static_cast<int64_t>(prediction.tasks_at(type)));
        }
      };

      if (minimize_cost) {
        MinCostFlowGraph& network = arena->mincost;
        network.Reset(sink + 1);
        network.ReserveEdges(static_cast<size_t>(cw + ct + (p_hi - p_lo)));
        add_supply_edges(network,
                         [](MinCostFlowGraph& net, int32_t u, int32_t v,
                            int64_t cap) { net.AddEdge(u, v, cap, 0); });
        for (int32_t p = p_lo; p < p_hi; ++p) {
          const TypePairEdge& pair =
              pairs[static_cast<size_t>(comp_pairs[static_cast<size_t>(p)])];
          const int32_t wi = local_worker_id[static_cast<size_t>(
              worker_node_of_type[static_cast<size_t>(pair.worker_type)])];
          const int32_t ti = local_task_id[static_cast<size_t>(
              task_node_of_type[static_cast<size_t>(pair.task_type)])];
          const double travel =
              TravelTime(st.RepresentativeLocation(pair.worker_type),
                         st.RepresentativeLocation(pair.task_type),
                         velocity_);
          const int64_t cap =
              std::min<int64_t>(prediction.workers_at(pair.worker_type),
                                prediction.tasks_at(pair.task_type));
          edge_ids.push_back(network.AddEdge(
              1 + wi, 1 + cw + ti, cap,
              static_cast<int64_t>(std::llround(travel * 1e6))));
        }
        network.Solve(source, sink, options_.flow_engine);
        for (int32_t p = p_lo; p < p_hi; ++p) {
          pair_flow[static_cast<size_t>(comp_pairs[static_cast<size_t>(
              p)])] = network.Flow(edge_ids[static_cast<size_t>(p - p_lo)]);
        }
      } else {
        FlowGraph& network = arena->maxflow;
        network.Reset(sink + 1);
        network.ReserveEdges(static_cast<size_t>(cw + ct + (p_hi - p_lo)));
        add_supply_edges(network,
                         [](FlowGraph& net, int32_t u, int32_t v,
                            int64_t cap) { net.AddEdge(u, v, cap); });
        for (int32_t p = p_lo; p < p_hi; ++p) {
          const TypePairEdge& pair =
              pairs[static_cast<size_t>(comp_pairs[static_cast<size_t>(p)])];
          const int32_t wi = local_worker_id[static_cast<size_t>(
              worker_node_of_type[static_cast<size_t>(pair.worker_type)])];
          const int32_t ti = local_task_id[static_cast<size_t>(
              task_node_of_type[static_cast<size_t>(pair.task_type)])];
          const int64_t cap =
              std::min<int64_t>(prediction.workers_at(pair.worker_type),
                                prediction.tasks_at(pair.task_type));
          edge_ids.push_back(network.AddEdge(1 + wi, 1 + cw + ti, cap));
        }
        arena->dinic.Solve(&network, source, sink);
        for (int32_t p = p_lo; p < p_hi; ++p) {
          pair_flow[static_cast<size_t>(comp_pairs[static_cast<size_t>(
              p)])] = network.Flow(edge_ids[static_cast<size_t>(p - p_lo)]);
        }
      }
    }
  };

  // Partition components into one contiguous chunk per thread, balanced on
  // pair counts (the dominant solve cost). The partition affects only which
  // arena/thread solves a component, never the component's result.
  const int32_t chunks = std::max<int32_t>(
      1, std::min<int32_t>(options_.num_threads, num_components));
  if (chunks <= 1) {
    // One chunk means across-component parallelism is useless — either one
    // thread, or one giant component serializing the solve (the PR 2
    // limitation). Lend the pool to the solver itself so it can shard its
    // *intra-component* scans (admissible-BFS frontiers, refine saturation
    // sweeps — both thread-count invariant, so the guide stays
    // bit-identical). Safe against pool deadlock only because this branch
    // runs solve_components on the calling thread, never on a pool worker.
    const bool lend_pool = options_.num_threads > 1 && minimize_cost;
    if (lend_pool) {
      ShardAt(0).mincost.SetParallelism(&Pool(), options_.num_threads);
    }
    solve_components(0, num_components, &ShardAt(0));
    if (lend_pool) ShardAt(0).mincost.SetParallelism(nullptr, 1);
  } else {
    const int64_t total_pairs = static_cast<int64_t>(pairs.size());
    std::vector<int32_t> bounds(static_cast<size_t>(chunks) + 1, 0);
    bounds[static_cast<size_t>(chunks)] = num_components;
    for (int32_t i = 1; i < chunks; ++i) {
      const int64_t target = total_pairs * i / chunks;
      const auto it =
          std::lower_bound(comp_pair_begin.begin(), comp_pair_begin.end(),
                           static_cast<int32_t>(target));
      const int32_t at_least = bounds[static_cast<size_t>(i) - 1] + 1;
      bounds[static_cast<size_t>(i)] = std::min(
          num_components - (chunks - i),
          std::max(at_least, static_cast<int32_t>(
                                 it - comp_pair_begin.begin())));
    }
    std::vector<std::future<void>> done;
    done.reserve(static_cast<size_t>(chunks));
    for (int32_t i = 0; i < chunks; ++i) {
      const int32_t lo = bounds[static_cast<size_t>(i)];
      const int32_t hi = bounds[static_cast<size_t>(i) + 1];
      ShardArena* arena = &ShardAt(static_cast<size_t>(i));
      done.push_back(Pool().Submit(
          [&solve_components, lo, hi, arena]() {
            solve_components(lo, hi, arena);
          }));
    }
    for (std::future<void>& f : done) f.get();
  }

  // ---- Rebuild the cache from this call so the *next* call diffs against
  // the network just solved. Done for every warm-mode call (including the
  // first, all-dirty one — that is what seeds the cache).
  if (warm) {
    WarmCache& cache = warm_cache_;
    cache.valid = true;
    cache.minimize_cost = minimize_cost;
    cache.fingerprint = fingerprint;
    cache.entries.clear();
    cache.entries.reserve(static_cast<size_t>(num_components));
    cache.by_hash.clear();
    cache.pair_wt.resize(pairs.size());
    cache.pair_tt.resize(pairs.size());
    cache.pair_wcap.resize(pairs.size());
    cache.pair_tcap.resize(pairs.size());
    cache.pair_flow.resize(pairs.size());
    int64_t cursor = 0;
    for (int32_t c = 0; c < num_components; ++c) {
      const int32_t p_lo = comp_pair_begin[static_cast<size_t>(c)];
      const int32_t p_hi = comp_pair_begin[static_cast<size_t>(c) + 1];
      WarmCache::Entry entry;
      entry.begin = cursor;
      entry.count = p_hi - p_lo;
      for (int32_t p = p_lo; p < p_hi; ++p) {
        const size_t k =
            static_cast<size_t>(comp_pairs[static_cast<size_t>(p)]);
        const size_t at = static_cast<size_t>(cursor + (p - p_lo));
        cache.pair_wt[at] = pairs[k].worker_type;
        cache.pair_tt[at] = pairs[k].task_type;
        cache.pair_wcap[at] = prediction.workers_at(pairs[k].worker_type);
        cache.pair_tcap[at] = prediction.tasks_at(pairs[k].task_type);
        cache.pair_flow[at] = pair_flow[k];
      }
      cache.by_hash[comp_hash[static_cast<size_t>(c)]].push_back(c);
      cache.entries.push_back(entry);
      cursor += entry.count;
    }
  }
  refresh_stats.components_solved =
      refresh_stats.components_total - refresh_stats.components_reused;
  refresh_stats.warm = refresh_stats.components_reused > 0;
  last_refresh_stats_ = refresh_stats;

  // ---- Deterministic merge: realize matches in the original pair order,
  // handing out nodes with per-type cursors exactly like the serial path.
  std::vector<int32_t> worker_cursor(static_cast<size_t>(num_types), 0);
  std::vector<int32_t> task_cursor(static_cast<size_t>(num_types), 0);
  for (size_t k = 0; k < pairs.size(); ++k) {
    const int64_t flow = pair_flow[k];
    if (flow <= 0) continue;
    const TypeId wt = pairs[k].worker_type;
    const TypeId tt = pairs[k].task_type;
    const GuideNodeId w0 = nodes.first_worker_node[static_cast<size_t>(wt)];
    const GuideNodeId r0 = nodes.first_task_node[static_cast<size_t>(tt)];
    for (int64_t u = 0; u < flow; ++u) {
      const GuideNodeId w = w0 + worker_cursor[static_cast<size_t>(wt)]++;
      const GuideNodeId r = r0 + task_cursor[static_cast<size_t>(tt)]++;
      FTOA_RETURN_NOT_OK(guide.MatchNodes(w, r));
    }
  }
  return guide;
}

Result<OfflineGuide> GuideGenerator::Generate(
    const PredictionMatrix& prediction) const {
  const double rate = options_.approx_sample_rate;
  if (!(rate > 0.0 && rate <= 1.0)) {
    return Status::InvalidArgument(
        "GuideOptions::approx_sample_rate must be in (0, 1]");
  }
  const bool approx = rate < 1.0;
  switch (options_.engine) {
    case GuideOptions::Engine::kFordFulkerson:
    case GuideOptions::Engine::kDinic:
      if (approx) {
        return Status::InvalidArgument(
            "GuideGenerator: approx_sample_rate < 1 requires a compressed "
            "engine (kCompressed, kCompressedMinCost, or kAuto)");
      }
      return GenerateNodeLevel(
          prediction,
          /*use_dinic=*/options_.engine == GuideOptions::Engine::kDinic);
    case GuideOptions::Engine::kCompressed:
      return GenerateCompressed(prediction, /*minimize_cost=*/false);
    case GuideOptions::Engine::kCompressedMinCost:
      return GenerateCompressed(prediction, /*minimize_cost=*/true);
    case GuideOptions::Engine::kAuto: {
      if (approx) {
        // The sampled network is the compressed engines' pair list.
        return GenerateCompressed(prediction, /*minimize_cost=*/false);
      }
      const int64_t edges = EstimateNodeLevelEdges(prediction);
      if (edges <= options_.node_level_edge_limit) {
        return GenerateNodeLevel(prediction, /*use_dinic=*/true);
      }
      return GenerateCompressed(prediction, /*minimize_cost=*/false);
    }
  }
  return Status::Internal("GuideGenerator: unknown engine");
}

}  // namespace ftoa
