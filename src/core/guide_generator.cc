#include "core/guide_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "flow/dinic.h"
#include "flow/ford_fulkerson.h"
#include "flow/min_cost_flow.h"
#include "model/feasibility.h"

namespace ftoa {

GuideGenerator::GuideGenerator(double velocity, GuideOptions options)
    : velocity_(velocity), options_(options) {}

void GuideGenerator::ForEachFeasibleTypePair(
    const PredictionMatrix& prediction,
    const std::function<void(TypeId, TypeId)>& fn) const {
  const SpacetimeSpec& st = prediction.spacetime();
  const GridSpec& grid = st.grid();
  const SlotSpec& slots = st.slots();
  const int num_areas = st.num_areas();
  const double dw = options_.worker_duration;
  const double dr = options_.task_duration;
  const double rep_slack = options_.representative_slack;

  // Per-slot list of cells with predicted tasks, for sparse iteration when
  // the feasibility disk covers most of the grid.
  std::vector<std::vector<CellId>> task_cells_by_slot(
      static_cast<size_t>(slots.num_slots()));
  for (int slot = 0; slot < slots.num_slots(); ++slot) {
    for (CellId cell = 0; cell < num_areas; ++cell) {
      if (prediction.tasks_at(st.TypeAt(slot, cell)) > 0) {
        task_cells_by_slot[static_cast<size_t>(slot)].push_back(cell);
      }
    }
  }

  for (int wslot = 0; wslot < slots.num_slots(); ++wslot) {
    const double sw = slots.SlotMidpoint(wslot);
    // Candidate task slots: representatives must satisfy
    //   sr < sw + dw (+ slack)  and  dr - (sw - sr) (+ slack) >= 0.
    const int slot_lo = std::max(
        0, slots.SlotOf(std::max(0.0, sw - dr - rep_slack)) - 1);
    const int slot_hi = std::min(slots.num_slots() - 1,
                                 slots.SlotOf(sw + dw + rep_slack) + 1);

    for (CellId wcell = 0; wcell < num_areas; ++wcell) {
      const TypeId wtype = st.TypeAt(wslot, wcell);
      if (prediction.workers_at(wtype) <= 0) continue;
      const Point wloc = grid.CellCenter(wcell);

      for (int tslot = slot_lo; tslot <= slot_hi; ++tslot) {
        const double sr = slots.SlotMidpoint(tslot);
        if (!(sr < sw + dw + rep_slack)) continue;
        const double slack = dr - (sw - sr) + rep_slack;
        if (slack < 0.0) continue;
        const double radius = slack * velocity_;

        // Choose between scanning the bounding box of the feasibility disk
        // and scanning the slot's nonempty task cells, whichever is smaller.
        const int cx_lo = std::max(
            0, static_cast<int>((wloc.x - radius) / grid.cell_width()));
        const int cx_hi = std::min(
            grid.cells_x() - 1,
            static_cast<int>((wloc.x + radius) / grid.cell_width()));
        const int cy_lo = std::max(
            0, static_cast<int>((wloc.y - radius) / grid.cell_height()));
        const int cy_hi = std::min(
            grid.cells_y() - 1,
            static_cast<int>((wloc.y + radius) / grid.cell_height()));
        const int64_t box_cells = static_cast<int64_t>(cx_hi - cx_lo + 1) *
                                  (cy_hi - cy_lo + 1);
        const auto& sparse = task_cells_by_slot[static_cast<size_t>(tslot)];

        auto consider = [&](CellId tcell) {
          const TypeId ttype = st.TypeAt(tslot, tcell);
          if (prediction.tasks_at(ttype) <= 0) return;
          const double d = Distance(wloc, grid.CellCenter(tcell));
          if (d / velocity_ <= slack) fn(wtype, ttype);
        };

        if (box_cells <= static_cast<int64_t>(sparse.size())) {
          for (int cy = cy_lo; cy <= cy_hi; ++cy) {
            for (int cx = cx_lo; cx <= cx_hi; ++cx) {
              consider(grid.CellAt(cx, cy));
            }
          }
        } else {
          for (CellId tcell : sparse) consider(tcell);
        }
      }
    }
  }
}

int64_t GuideGenerator::EstimateNodeLevelEdges(
    const PredictionMatrix& prediction) const {
  int64_t edges = 0;
  ForEachFeasibleTypePair(prediction, [&](TypeId wt, TypeId tt) {
    edges += static_cast<int64_t>(prediction.workers_at(wt)) *
             prediction.tasks_at(tt);
  });
  return edges;
}

namespace {

/// Instantiates all predicted nodes into `guide`; returns the first guide
/// node id per type so callers can translate (type, ordinal) -> node id.
struct InstantiatedNodes {
  std::vector<GuideNodeId> first_worker_node;  // Per type, -1 when empty.
  std::vector<GuideNodeId> first_task_node;
};

InstantiatedNodes InstantiateNodes(const PredictionMatrix& prediction,
                                   OfflineGuide* guide) {
  const int num_types = prediction.spacetime().num_types();
  InstantiatedNodes out;
  out.first_worker_node.assign(static_cast<size_t>(num_types), -1);
  out.first_task_node.assign(static_cast<size_t>(num_types), -1);
  for (TypeId type = 0; type < num_types; ++type) {
    const int32_t workers = prediction.workers_at(type);
    for (int32_t k = 0; k < workers; ++k) {
      const GuideNodeId id = guide->AddWorkerNode(type);
      if (k == 0) out.first_worker_node[static_cast<size_t>(type)] = id;
    }
    const int32_t tasks = prediction.tasks_at(type);
    for (int32_t k = 0; k < tasks; ++k) {
      const GuideNodeId id = guide->AddTaskNode(type);
      if (k == 0) out.first_task_node[static_cast<size_t>(type)] = id;
    }
  }
  return out;
}

}  // namespace

Result<OfflineGuide> GuideGenerator::GenerateNodeLevel(
    const PredictionMatrix& prediction, bool use_dinic) const {
  const int64_t m = prediction.TotalWorkers();
  const int64_t n = prediction.TotalTasks();
  const int64_t node_edges = EstimateNodeLevelEdges(prediction);
  if (m + n + 2 > (1LL << 30) || node_edges > (1LL << 28)) {
    return Status::InvalidArgument(
        "GuideGenerator: node-level network too large; use kCompressed");
  }

  OfflineGuide guide(prediction.spacetime(), velocity_,
                     options_.worker_duration, options_.task_duration,
                     options_.representative_slack);
  const InstantiatedNodes nodes = InstantiateNodes(prediction, &guide);

  // Network layout: source 0, worker nodes 1..m, task nodes m+1..m+n,
  // sink m+n+1 (Algorithm 1 lines 1-5). The edge arena and the solver
  // scratch live in the generator and are reused across calls.
  const NodeId source = 0;
  const NodeId sink = static_cast<NodeId>(m + n + 1);
  FlowGraph& network = maxflow_network_;
  network.Reset(static_cast<NodeId>(m + n + 2));
  network.ReserveEdges(static_cast<size_t>(m + n + node_edges));
  for (int64_t w = 0; w < m; ++w) {
    network.AddEdge(source, static_cast<NodeId>(1 + w), 1);
  }
  for (int64_t r = 0; r < n; ++r) {
    network.AddEdge(static_cast<NodeId>(1 + m + r), sink, 1);
  }

  // Lines 6-9: one edge per feasible (worker node, task node) pair. Nodes of
  // a type are contiguous in the guide, so we expand per feasible type pair.
  std::vector<EdgeId> pair_edges;
  std::vector<std::pair<GuideNodeId, GuideNodeId>> pair_nodes;
  ForEachFeasibleTypePair(prediction, [&](TypeId wt, TypeId tt) {
    const GuideNodeId w0 = nodes.first_worker_node[static_cast<size_t>(wt)];
    const GuideNodeId r0 = nodes.first_task_node[static_cast<size_t>(tt)];
    const int32_t wc = prediction.workers_at(wt);
    const int32_t tc = prediction.tasks_at(tt);
    for (int32_t wi = 0; wi < wc; ++wi) {
      for (int32_t ti = 0; ti < tc; ++ti) {
        const EdgeId e = network.AddEdge(
            static_cast<NodeId>(1 + w0 + wi),
            static_cast<NodeId>(1 + m + r0 + ti), 1);
        pair_edges.push_back(e);
        pair_nodes.emplace_back(w0 + wi, r0 + ti);
      }
    }
  });

  // Line 10: max flow.
  if (use_dinic) {
    dinic_.Solve(&network, source, sink);
  } else {
    FordFulkersonMaxFlow(&network, source, sink);
  }

  for (size_t k = 0; k < pair_edges.size(); ++k) {
    if (network.Flow(pair_edges[k]) > 0) {
      FTOA_RETURN_NOT_OK(
          guide.MatchNodes(pair_nodes[k].first, pair_nodes[k].second));
    }
  }
  return guide;
}

Result<OfflineGuide> GuideGenerator::GenerateCompressed(
    const PredictionMatrix& prediction, bool minimize_cost) const {
  const SpacetimeSpec& st = prediction.spacetime();
  const int num_types = st.num_types();

  // Dense type id -> compact network node id, assigned on first use.
  std::vector<int32_t> worker_node_of_type(static_cast<size_t>(num_types),
                                           -1);
  std::vector<int32_t> task_node_of_type(static_cast<size_t>(num_types), -1);
  std::vector<TypeId> worker_types;
  std::vector<TypeId> task_types;
  struct TypePairEdge {
    TypeId worker_type;
    TypeId task_type;
  };
  std::vector<TypePairEdge> pairs;
  ForEachFeasibleTypePair(prediction, [&](TypeId wt, TypeId tt) {
    if (worker_node_of_type[static_cast<size_t>(wt)] < 0) {
      worker_node_of_type[static_cast<size_t>(wt)] =
          static_cast<int32_t>(worker_types.size());
      worker_types.push_back(wt);
    }
    if (task_node_of_type[static_cast<size_t>(tt)] < 0) {
      task_node_of_type[static_cast<size_t>(tt)] =
          static_cast<int32_t>(task_types.size());
      task_types.push_back(tt);
    }
    pairs.push_back(TypePairEdge{wt, tt});
  });

  const int32_t wcount = static_cast<int32_t>(worker_types.size());
  const int32_t tcount = static_cast<int32_t>(task_types.size());
  const int32_t source = 0;
  const int32_t sink = 1 + wcount + tcount;

  OfflineGuide guide(st, velocity_, options_.worker_duration,
                     options_.task_duration,
                     options_.representative_slack);
  const InstantiatedNodes nodes = InstantiateNodes(prediction, &guide);

  // Cursors handing out the next unmatched node of each type.
  std::vector<int32_t> worker_cursor(static_cast<size_t>(num_types), 0);
  std::vector<int32_t> task_cursor(static_cast<size_t>(num_types), 0);
  auto realize_pairs = [&](TypeId wt, TypeId tt, int64_t flow) -> Status {
    const GuideNodeId w0 = nodes.first_worker_node[static_cast<size_t>(wt)];
    const GuideNodeId r0 = nodes.first_task_node[static_cast<size_t>(tt)];
    for (int64_t k = 0; k < flow; ++k) {
      const GuideNodeId w = w0 + worker_cursor[static_cast<size_t>(wt)]++;
      const GuideNodeId r = r0 + task_cursor[static_cast<size_t>(tt)]++;
      FTOA_RETURN_NOT_OK(guide.MatchNodes(w, r));
    }
    return Status::OK();
  };

  if (minimize_cost) {
    MinCostFlowGraph& network = mincost_network_;
    network.Reset(sink + 1);
    network.ReserveEdges(static_cast<size_t>(wcount) + tcount +
                         pairs.size());
    for (int32_t i = 0; i < wcount; ++i) {
      network.AddEdge(source, 1 + i,
                      prediction.workers_at(worker_types[static_cast<size_t>(
                          i)]),
                      0);
    }
    for (int32_t j = 0; j < tcount; ++j) {
      network.AddEdge(1 + wcount + j, sink,
                      prediction.tasks_at(task_types[static_cast<size_t>(j)]),
                      0);
    }
    std::vector<int32_t> pair_edge_ids;
    pair_edge_ids.reserve(pairs.size());
    for (const TypePairEdge& pair : pairs) {
      const int32_t wi =
          worker_node_of_type[static_cast<size_t>(pair.worker_type)];
      const int32_t ti = task_node_of_type[static_cast<size_t>(pair.task_type)];
      const double travel =
          TravelTime(st.RepresentativeLocation(pair.worker_type),
                     st.RepresentativeLocation(pair.task_type), velocity_);
      const int64_t cap =
          std::min<int64_t>(prediction.workers_at(pair.worker_type),
                            prediction.tasks_at(pair.task_type));
      pair_edge_ids.push_back(network.AddEdge(
          1 + wi, 1 + wcount + ti, cap,
          static_cast<int64_t>(std::llround(travel * 1e6))));
    }
    network.Solve(source, sink);
    for (size_t k = 0; k < pairs.size(); ++k) {
      const int64_t flow = network.Flow(pair_edge_ids[k]);
      if (flow > 0) {
        FTOA_RETURN_NOT_OK(
            realize_pairs(pairs[k].worker_type, pairs[k].task_type, flow));
      }
    }
    return guide;
  }

  FlowGraph& network = maxflow_network_;
  network.Reset(sink + 1);
  network.ReserveEdges(static_cast<size_t>(wcount) + tcount + pairs.size());
  for (int32_t i = 0; i < wcount; ++i) {
    network.AddEdge(source, 1 + i,
                    prediction.workers_at(worker_types[static_cast<size_t>(
                        i)]));
  }
  for (int32_t j = 0; j < tcount; ++j) {
    network.AddEdge(1 + wcount + j, sink,
                    prediction.tasks_at(task_types[static_cast<size_t>(j)]));
  }
  std::vector<EdgeId> pair_edge_ids;
  pair_edge_ids.reserve(pairs.size());
  for (const TypePairEdge& pair : pairs) {
    const int32_t wi =
        worker_node_of_type[static_cast<size_t>(pair.worker_type)];
    const int32_t ti = task_node_of_type[static_cast<size_t>(pair.task_type)];
    const int64_t cap =
        std::min<int64_t>(prediction.workers_at(pair.worker_type),
                          prediction.tasks_at(pair.task_type));
    pair_edge_ids.push_back(network.AddEdge(1 + wi, 1 + wcount + ti, cap));
  }
  dinic_.Solve(&network, source, sink);
  for (size_t k = 0; k < pairs.size(); ++k) {
    const int64_t flow = network.Flow(pair_edge_ids[k]);
    if (flow > 0) {
      FTOA_RETURN_NOT_OK(
          realize_pairs(pairs[k].worker_type, pairs[k].task_type, flow));
    }
  }
  return guide;
}

Result<OfflineGuide> GuideGenerator::Generate(
    const PredictionMatrix& prediction) const {
  switch (options_.engine) {
    case GuideOptions::Engine::kFordFulkerson:
      return GenerateNodeLevel(prediction, /*use_dinic=*/false);
    case GuideOptions::Engine::kDinic:
      return GenerateNodeLevel(prediction, /*use_dinic=*/true);
    case GuideOptions::Engine::kCompressed:
      return GenerateCompressed(prediction, /*minimize_cost=*/false);
    case GuideOptions::Engine::kCompressedMinCost:
      return GenerateCompressed(prediction, /*minimize_cost=*/true);
    case GuideOptions::Engine::kAuto: {
      const int64_t edges = EstimateNodeLevelEdges(prediction);
      if (edges <= options_.node_level_edge_limit) {
        return GenerateNodeLevel(prediction, /*use_dinic=*/true);
      }
      return GenerateCompressed(prediction, /*minimize_cost=*/false);
    }
  }
  return Status::Internal("GuideGenerator: unknown engine");
}

}  // namespace ftoa
