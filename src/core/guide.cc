#include "core/guide.h"

namespace ftoa {

OfflineGuide::OfflineGuide(SpacetimeSpec spacetime, double velocity,
                           double worker_duration, double task_duration,
                           double representative_slack)
    : spacetime_(spacetime),
      velocity_(velocity),
      worker_duration_(worker_duration),
      task_duration_(task_duration),
      representative_slack_(representative_slack),
      worker_nodes_by_type_(static_cast<size_t>(spacetime.num_types())),
      task_nodes_by_type_(static_cast<size_t>(spacetime.num_types())) {}

GuideNodeId OfflineGuide::AddWorkerNode(TypeId type) {
  const GuideNodeId id = static_cast<GuideNodeId>(worker_nodes_.size());
  worker_nodes_.push_back(GuideNode{type, -1});
  worker_nodes_by_type_[static_cast<size_t>(type)].push_back(id);
  return id;
}

GuideNodeId OfflineGuide::AddTaskNode(TypeId type) {
  const GuideNodeId id = static_cast<GuideNodeId>(task_nodes_.size());
  task_nodes_.push_back(GuideNode{type, -1});
  task_nodes_by_type_[static_cast<size_t>(type)].push_back(id);
  return id;
}

Status OfflineGuide::MatchNodes(GuideNodeId worker_node,
                                GuideNodeId task_node) {
  if (worker_node < 0 ||
      static_cast<size_t>(worker_node) >= worker_nodes_.size()) {
    return Status::OutOfRange("OfflineGuide: worker node out of range");
  }
  if (task_node < 0 || static_cast<size_t>(task_node) >= task_nodes_.size()) {
    return Status::OutOfRange("OfflineGuide: task node out of range");
  }
  if (worker_nodes_[static_cast<size_t>(worker_node)].partner != -1) {
    return Status::FailedPrecondition(
        "OfflineGuide: worker node already matched");
  }
  if (task_nodes_[static_cast<size_t>(task_node)].partner != -1) {
    return Status::FailedPrecondition(
        "OfflineGuide: task node already matched");
  }
  worker_nodes_[static_cast<size_t>(worker_node)].partner = task_node;
  task_nodes_[static_cast<size_t>(task_node)].partner = worker_node;
  ++matched_pairs_;
  return Status::OK();
}

std::unordered_map<int64_t, int32_t>
OfflineGuide::MatchedPairCountsByTypePair() const {
  std::unordered_map<int64_t, int32_t> counts;
  counts.reserve(static_cast<size_t>(matched_pairs_));
  for (const GuideNode& node : worker_nodes_) {
    if (node.partner == -1) continue;
    const TypeId task_type =
        task_nodes_[static_cast<size_t>(node.partner)].type;
    ++counts[TypePairKey(node.type, task_type)];
  }
  return counts;
}

Status OfflineGuide::Validate() const {
  for (size_t w = 0; w < worker_nodes_.size(); ++w) {
    const GuideNode& node = worker_nodes_[w];
    if (node.partner == -1) continue;
    if (static_cast<size_t>(node.partner) >= task_nodes_.size()) {
      return Status::Internal("OfflineGuide: dangling partner id");
    }
    const GuideNode& partner = task_nodes_[static_cast<size_t>(node.partner)];
    if (partner.partner != static_cast<GuideNodeId>(w)) {
      return Status::Internal("OfflineGuide: asymmetric matching");
    }
    // The generator's slack extends both deadline conditions uniformly.
    const bool feasible = CanServeAttrs(
        spacetime_.RepresentativeLocation(node.type),
        spacetime_.RepresentativeTime(node.type),
        worker_duration_ + representative_slack_,
        spacetime_.RepresentativeLocation(partner.type),
        spacetime_.RepresentativeTime(partner.type),
        task_duration_ + representative_slack_, velocity_,
        FeasibilityPolicy::kDispatchAtWorkerStart);
    if (!feasible) {
      return Status::FailedPrecondition(
          "OfflineGuide: matched pair violates type-level feasibility");
    }
  }
  return Status::OK();
}

}  // namespace ftoa
