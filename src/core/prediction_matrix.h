// PredictionMatrix: the a_ij / b_ij matrices of the paper — predicted
// numbers of workers and tasks per (time slot, grid area) type. This is the
// interface between the offline-prediction step and guide generation.

#ifndef FTOA_CORE_PREDICTION_MATRIX_H_
#define FTOA_CORE_PREDICTION_MATRIX_H_

#include <cstdint>
#include <vector>

#include "model/instance.h"
#include "spatial/spacetime.h"
#include "util/rng.h"

namespace ftoa {

/// Integer per-type counts of predicted workers (a_ij) and tasks (b_ij).
class PredictionMatrix {
 public:
  PredictionMatrix() = default;

  /// All-zero matrices over the given type space.
  explicit PredictionMatrix(const SpacetimeSpec& spacetime);

  const SpacetimeSpec& spacetime() const { return spacetime_; }

  int32_t workers_at(TypeId type) const {
    return workers_[static_cast<size_t>(type)];
  }
  int32_t tasks_at(TypeId type) const {
    return tasks_[static_cast<size_t>(type)];
  }
  void set_workers_at(TypeId type, int32_t count) {
    workers_[static_cast<size_t>(type)] = count;
  }
  void set_tasks_at(TypeId type, int32_t count) {
    tasks_[static_cast<size_t>(type)] = count;
  }

  const std::vector<int32_t>& workers() const { return workers_; }
  const std::vector<int32_t>& tasks() const { return tasks_; }

  /// m = sum a_ij — the number of predicted workers.
  int64_t TotalWorkers() const;
  /// n = sum b_ij — the number of predicted tasks.
  int64_t TotalTasks() const;

  /// The realized counts of `instance` — a perfect prediction.
  static PredictionMatrix FromInstance(const Instance& instance);

  /// From real-valued predicted intensities (rounded to nearest integer,
  /// negatives clamped to 0). Both vectors must have num_types() entries.
  static PredictionMatrix FromIntensities(
      const SpacetimeSpec& spacetime, const std::vector<double>& workers,
      const std::vector<double>& tasks);

  /// A copy with multiplicative lognormal-ish noise: each nonzero count c
  /// becomes round(c * (1 + noise)) with noise ~ N(0, relative_sigma), and
  /// with probability `phantom_rate` an empty type near a busy one receives
  /// a spurious count. Models imperfect offline prediction (E16 ablation).
  PredictionMatrix WithNoise(double relative_sigma, double phantom_rate,
                             Rng* rng) const;

 private:
  SpacetimeSpec spacetime_;
  std::vector<int32_t> workers_;
  std::vector<int32_t> tasks_;
};

}  // namespace ftoa

#endif  // FTOA_CORE_PREDICTION_MATRIX_H_
