// Offline guide generation (paper Algorithm 1): instantiate the predicted
// per-type counts into bipartite nodes, connect feasible (worker node, task
// node) pairs, and compute a maximum bipartite matching with max flow.
//
// Engines:
//  * kFordFulkerson — Algorithm 1 verbatim (DFS augmenting paths) on the
//    node-level network.
//  * kDinic — same network, Dinic's algorithm ("any other max-flow algorithm
//    is applicable", Section 4 note (1)).
//  * kCompressed — our aggregation: all nodes of one (slot, area) type are
//    interchangeable, so the network can use one node per *type* with
//    capacity a_ij / b_ij. The max-flow value is identical (exact capacity
//    aggregation) while the network shrinks from m + n nodes and
//    sum(a_wt * b_tt) edges to the number of nonempty types and feasible
//    type pairs. This is what makes city-scale guides practical (E15).
//  * kCompressedMinCost — the compressed network solved with min-cost
//    max-flow over travel costs (Section 4 note (2)): among all maximum
//    matchings, pick one minimizing total travel time.
//  * kAuto — node-level Dinic when the node-level network is small,
//    kCompressed otherwise.
//
// Sharded solving: the compressed engines first decompose the type-pair
// network into connected components (union-find over the feasible pairs).
// Components are independent sub-problems — no augmenting path crosses
// them — so each is solved on its own small network, and with
// GuideOptions::num_threads > 1 the components are partitioned into one
// contiguous, pair-count-balanced chunk per thread and solved on per-chunk
// solver arenas in parallel. Per-pair flows are written into a global
// array indexed by the original pair order and realized into guide matches
// in that order after the join, so the resulting guide is bit-identical no
// matter how many threads solved it (the serial path runs the exact same
// decomposition with one chunk).

#ifndef FTOA_CORE_GUIDE_GENERATOR_H_
#define FTOA_CORE_GUIDE_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/guide.h"
#include "core/prediction_matrix.h"
#include "flow/dinic.h"
#include "flow/flow_engine.h"
#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace ftoa {

/// How consecutive Generate calls on one GuideGenerator relate.
///  * kCold — every call solves the full network from scratch (arenas are
///    still reused, so steady-state calls stay allocation-free).
///  * kWarm — the generator remembers the previous call's per-component
///    solves; a component whose pair list, capacities, and costs are
///    unchanged reuses its flows verbatim and only *dirty* components are
///    re-solved. Because each component's solve is a deterministic function
///    of the component's network alone, the warm guide is bit-identical to
///    the cold one (the equivalence suite pins this). The win scales with
///    the sparsity of the day-to-day prediction delta — the serving
///    refresher's steady state.
enum class GuideRefreshMode { kCold, kWarm };

/// Canonical names in declaration order ("cold", "warm") — CLI usage
/// strings and unknown-value errors derive from this list.
const std::vector<std::string>& AllGuideRefreshModeNames();

/// Canonical name of `mode`.
const char* GuideRefreshModeName(GuideRefreshMode mode);

/// Parses a canonical name; NotFound (listing the valid set) otherwise.
Result<GuideRefreshMode> ParseGuideRefreshMode(const std::string& name);

/// Tuning knobs for guide generation.
struct GuideOptions {
  enum class Engine {
    kFordFulkerson,
    kDinic,
    kCompressed,
    kCompressedMinCost,
    kAuto,
  };

  Engine engine = Engine::kAuto;

  /// Solver core for the kCompressedMinCost per-component networks (see
  /// flow/flow_engine.h). kAuto picks per component from the component's
  /// measured shape — deterministic for a fixed prediction, so the guide
  /// stays reproducible. Engines may return different equally-cheap flow
  /// patterns, so the guide is bit-identical across thread counts *per
  /// engine* and (matched count, total cost)-equivalent across engines.
  FlowEngine flow_engine = FlowEngine::kAuto;

  /// Representative worker waiting time Dw used in the type-level deadline
  /// test (the platform knows its configured worker patience).
  double worker_duration = 3.0;

  /// Representative task service window Dr used in the type-level test.
  double task_duration = 2.0;

  /// Extra slack (time units) added to the type-level deadline test to
  /// compensate for slot-midpoint discretization: a worker and a task of
  /// the same slot meet at their midpoints in the test, yet the real pair
  /// enjoys up to one slot of extra travel credit (Definition 4 credits
  /// movement from Sw). 0 is the strict midpoint test; half the slot
  /// duration recovers the *expected* intra-slot credit. The paper glosses
  /// this ("such differences can be ignored") because its synthetic
  /// slot/velocity ratio makes it negligible; coarse-slot deployments (the
  /// city traces) are not in that regime.
  double representative_slack = 0.0;

  /// kAuto switches to kCompressed when the node-level network would exceed
  /// this many edges.
  int64_t node_level_edge_limit = 2'000'000;

  /// Worker threads for the sharded compressed solve (see file comment).
  /// 1 = solve all components on the calling thread. The guide is
  /// bit-identical for every value. Only the compressed engines shard;
  /// the node-level network is one component by construction.
  int num_threads = 1;

  /// Approximate-guide mode: keep each feasible type pair in the network
  /// with this probability (seeded Bernoulli per pair, drawn in the
  /// deterministic pair-enumeration order — so the sample, like the exact
  /// solve, is bit-identical across thread counts). 1.0 (the default) is
  /// the exact network. Dropping pairs only removes edges, so the
  /// approximate guide's matched utility is a lower bound of the exact
  /// one; the measured gap bound is reported via last_approx_report().
  /// Must lie in (0, 1]. Values < 1 require a compressed engine (kAuto
  /// routes there automatically).
  double approx_sample_rate = 1.0;

  /// Seed of the pair-sampling stream (only used when
  /// approx_sample_rate < 1).
  uint64_t approx_seed = 0x5eedULL;

  /// Whether repeated Generate calls on this generator reuse unchanged
  /// component solves (see GuideRefreshMode). Only the compressed engines
  /// have components to reuse; the node-level engines always run cold and
  /// report warm = false in last_refresh_stats().
  GuideRefreshMode refresh_mode = GuideRefreshMode::kCold;
};

/// What approximate sampling did to the last generated guide. Each dropped
/// pair (wt, tt) can carry at most min(workers_at(wt), tasks_at(tt)) units
/// of flow, so utility_loss_bound — the sum of those capacities — is a
/// measured upper bound on the matched-pair count the sampled network can
/// lose against the exact one.
struct ApproxGuideReport {
  int64_t feasible_pairs = 0;      ///< Pairs the exact network would hold.
  int64_t sampled_pairs = 0;       ///< Pairs kept by the Bernoulli sample.
  int64_t utility_loss_bound = 0;  ///< Max matched pairs lost (measured).
};

/// What the warm cache did for the last Generate call. With refresh_mode ==
/// kCold (or on the node-level engines, or on the first warm call) every
/// component solves and warm is false; in the warm steady state
/// components_reused tracks how sparse the day-to-day delta really was.
struct GuideRefreshStats {
  bool warm = false;                ///< True iff any component was reused.
  int32_t components_total = 0;     ///< Components in this call's network.
  int32_t components_reused = 0;    ///< Solved by cache hit (no flow solve).
  int32_t components_solved = 0;    ///< Dirty — solved from scratch.
  int64_t pairs_total = 0;          ///< Type pairs in this call's network.
  int64_t pairs_reused = 0;         ///< Pairs whose flow came from the cache.
};

/// Builds OfflineGuide instances from prediction matrices.
///
/// The generator owns reusable solver arenas (flow network edge arenas and
/// the solvers' scratch buffers) — one arena set per shard when
/// num_threads > 1 — so repeated Generate calls (one per prediction window
/// in a live deployment) stop re-allocating the network. Consequently a
/// GuideGenerator instance is NOT thread-safe: it parallelizes internally,
/// but concurrent Generate calls on one instance are undefined; use one
/// instance per calling thread.
class GuideGenerator {
 public:
  /// `velocity` is the shared worker speed of the deployment.
  GuideGenerator(double velocity, GuideOptions options);
  ~GuideGenerator();

  /// Runs Algorithm 1 (or an equivalent engine) on `prediction`.
  Result<OfflineGuide> Generate(const PredictionMatrix& prediction) const;

  /// Number of edges the node-level bipartite network would contain, i.e.
  /// sum over feasible type pairs of a_wt * b_tt. Drives kAuto.
  int64_t EstimateNodeLevelEdges(const PredictionMatrix& prediction) const;

  /// Invokes `fn(worker_type, task_type)` for every type pair whose
  /// representatives satisfy the deadline constraint and whose predicted
  /// counts are both nonzero. Exposed for tests and benches.
  void ForEachFeasibleTypePair(
      const PredictionMatrix& prediction,
      const std::function<void(TypeId, TypeId)>& fn) const;

  /// Connected components the last compressed Generate decomposed into
  /// (instrumentation for tests and benches; 0 before any compressed run).
  int32_t last_num_components() const { return last_num_components_; }

  /// Sampling outcome of the last compressed Generate. With
  /// approx_sample_rate == 1 it reports the exact network (sampled ==
  /// feasible, loss bound 0).
  const ApproxGuideReport& last_approx_report() const {
    return last_approx_report_;
  }

  /// Warm-cache outcome of the last Generate (see GuideRefreshStats).
  const GuideRefreshStats& last_refresh_stats() const {
    return last_refresh_stats_;
  }

  /// Drops the warm cache; the next Generate solves everything cold. Called
  /// automatically when a call's network-defining inputs (engine choice,
  /// minimize_cost path) differ from the cached call's.
  void InvalidateWarmCache() const;

 private:
  /// One shard's reusable solver state. Each chunk of components is solved
  /// entirely on one arena, so arenas never cross threads within a call.
  struct ShardArena {
    FlowGraph maxflow;
    MinCostFlowGraph mincost;
    DinicSolver dinic;
  };

  Result<OfflineGuide> GenerateNodeLevel(const PredictionMatrix& prediction,
                                         bool use_dinic) const;
  Result<OfflineGuide> GenerateCompressed(const PredictionMatrix& prediction,
                                          bool minimize_cost) const;

  /// The warm cache: the previous compressed call's per-component networks
  /// and solved flows, keyed by a content hash of each component's pair
  /// sequence (types + capacities in deterministic pair order). A new
  /// call's component whose sequence verifies equal against a cached entry
  /// reuses the cached flows verbatim — costs are a pure function of the
  /// type ids, and each component solve is a deterministic function of the
  /// component network alone, so reuse is bit-exact. `minimize_cost`
  /// guards cross-path reuse (max-flow and min-cost flows differ).
  struct WarmCache {
    /// One cached component: its pair sequence and solved flows, stored as
    /// parallel slices [begin, begin + count) of the flat arrays below.
    struct Entry {
      int64_t begin = 0;
      int64_t count = 0;
    };
    bool valid = false;
    bool minimize_cost = false;
    /// Hash of everything network-defining that can vary across calls on
    /// one generator (the spacetime geometry the costs derive from); a
    /// mismatch drops the cache rather than risking stale flows.
    uint64_t fingerprint = 0;
    std::vector<Entry> entries;
    /// Flat per-pair payload, concatenated in cached-component order:
    /// worker type, task type, worker capacity, task capacity, solved flow.
    std::vector<TypeId> pair_wt;
    std::vector<TypeId> pair_tt;
    std::vector<int64_t> pair_wcap;
    std::vector<int64_t> pair_tcap;
    std::vector<int64_t> pair_flow;
    /// Content hash -> indices into `entries` (a vector to survive the
    /// astronomically-unlikely hash collision; membership is always
    /// confirmed by full sequence comparison).
    std::unordered_map<uint64_t, std::vector<int32_t>> by_hash;
  };

  /// Lazily grown per-shard arenas; index 0 also serves the serial paths.
  ShardArena& ShardAt(size_t index) const;
  /// Lazily created worker pool (only when options_.num_threads > 1).
  ThreadPool& Pool() const;

  double velocity_;
  GuideOptions options_;

  // Reusable solver arenas (see class comment). Mutable: reusing scratch
  // does not change the observable result of the logically-const Generate.
  mutable std::vector<std::unique_ptr<ShardArena>> shards_;
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable int32_t last_num_components_ = 0;
  mutable ApproxGuideReport last_approx_report_;
  mutable GuideRefreshStats last_refresh_stats_;
  mutable WarmCache warm_cache_;
};

}  // namespace ftoa

#endif  // FTOA_CORE_GUIDE_GENERATOR_H_
