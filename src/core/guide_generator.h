// Offline guide generation (paper Algorithm 1): instantiate the predicted
// per-type counts into bipartite nodes, connect feasible (worker node, task
// node) pairs, and compute a maximum bipartite matching with max flow.
//
// Engines:
//  * kFordFulkerson — Algorithm 1 verbatim (DFS augmenting paths) on the
//    node-level network.
//  * kDinic — same network, Dinic's algorithm ("any other max-flow algorithm
//    is applicable", Section 4 note (1)).
//  * kCompressed — our aggregation: all nodes of one (slot, area) type are
//    interchangeable, so the network can use one node per *type* with
//    capacity a_ij / b_ij. The max-flow value is identical (exact capacity
//    aggregation) while the network shrinks from m + n nodes and
//    sum(a_wt * b_tt) edges to the number of nonempty types and feasible
//    type pairs. This is what makes city-scale guides practical (E15).
//  * kCompressedMinCost — the compressed network solved with min-cost
//    max-flow over travel costs (Section 4 note (2)): among all maximum
//    matchings, pick one minimizing total travel time.
//  * kAuto — node-level Dinic when the node-level network is small,
//    kCompressed otherwise.

#ifndef FTOA_CORE_GUIDE_GENERATOR_H_
#define FTOA_CORE_GUIDE_GENERATOR_H_

#include <functional>

#include "core/guide.h"
#include "core/prediction_matrix.h"
#include "flow/dinic.h"
#include "flow/graph.h"
#include "flow/min_cost_flow.h"
#include "util/result.h"

namespace ftoa {

/// Tuning knobs for guide generation.
struct GuideOptions {
  enum class Engine {
    kFordFulkerson,
    kDinic,
    kCompressed,
    kCompressedMinCost,
    kAuto,
  };

  Engine engine = Engine::kAuto;

  /// Representative worker waiting time Dw used in the type-level deadline
  /// test (the platform knows its configured worker patience).
  double worker_duration = 3.0;

  /// Representative task service window Dr used in the type-level test.
  double task_duration = 2.0;

  /// Extra slack (time units) added to the type-level deadline test to
  /// compensate for slot-midpoint discretization: a worker and a task of
  /// the same slot meet at their midpoints in the test, yet the real pair
  /// enjoys up to one slot of extra travel credit (Definition 4 credits
  /// movement from Sw). 0 is the strict midpoint test; half the slot
  /// duration recovers the *expected* intra-slot credit. The paper glosses
  /// this ("such differences can be ignored") because its synthetic
  /// slot/velocity ratio makes it negligible; coarse-slot deployments (the
  /// city traces) are not in that regime.
  double representative_slack = 0.0;

  /// kAuto switches to kCompressed when the node-level network would exceed
  /// this many edges.
  int64_t node_level_edge_limit = 2'000'000;
};

/// Builds OfflineGuide instances from prediction matrices.
///
/// The generator owns reusable solver arenas (flow network edge arenas and
/// the solvers' scratch buffers), so repeated Generate calls — one per
/// prediction window in a live deployment — stop re-allocating the network.
/// Consequently a GuideGenerator instance is NOT thread-safe; use one
/// instance per thread.
class GuideGenerator {
 public:
  /// `velocity` is the shared worker speed of the deployment.
  GuideGenerator(double velocity, GuideOptions options);

  /// Runs Algorithm 1 (or an equivalent engine) on `prediction`.
  Result<OfflineGuide> Generate(const PredictionMatrix& prediction) const;

  /// Number of edges the node-level bipartite network would contain, i.e.
  /// sum over feasible type pairs of a_wt * b_tt. Drives kAuto.
  int64_t EstimateNodeLevelEdges(const PredictionMatrix& prediction) const;

  /// Invokes `fn(worker_type, task_type)` for every type pair whose
  /// representatives satisfy the deadline constraint and whose predicted
  /// counts are both nonzero. Exposed for tests and benches.
  void ForEachFeasibleTypePair(
      const PredictionMatrix& prediction,
      const std::function<void(TypeId, TypeId)>& fn) const;

 private:
  Result<OfflineGuide> GenerateNodeLevel(const PredictionMatrix& prediction,
                                         bool use_dinic) const;
  Result<OfflineGuide> GenerateCompressed(const PredictionMatrix& prediction,
                                          bool minimize_cost) const;

  double velocity_;
  GuideOptions options_;

  // Reusable solver arenas (see class comment). Mutable: reusing scratch
  // does not change the observable result of the logically-const Generate.
  mutable FlowGraph maxflow_network_;
  mutable MinCostFlowGraph mincost_network_;
  mutable DinicSolver dinic_;
};

}  // namespace ftoa

#endif  // FTOA_CORE_GUIDE_GENERATOR_H_
