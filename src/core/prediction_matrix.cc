#include "core/prediction_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ftoa {

PredictionMatrix::PredictionMatrix(const SpacetimeSpec& spacetime)
    : spacetime_(spacetime),
      workers_(static_cast<size_t>(spacetime.num_types()), 0),
      tasks_(static_cast<size_t>(spacetime.num_types()), 0) {}

int64_t PredictionMatrix::TotalWorkers() const {
  int64_t total = 0;
  for (int32_t c : workers_) total += c;
  return total;
}

int64_t PredictionMatrix::TotalTasks() const {
  int64_t total = 0;
  for (int32_t c : tasks_) total += c;
  return total;
}

PredictionMatrix PredictionMatrix::FromInstance(const Instance& instance) {
  PredictionMatrix matrix(instance.spacetime());
  auto [worker_counts, task_counts] = instance.CountsPerType();
  for (size_t t = 0; t < worker_counts.size(); ++t) {
    matrix.workers_[t] = worker_counts[t];
    matrix.tasks_[t] = task_counts[t];
  }
  return matrix;
}

PredictionMatrix PredictionMatrix::FromIntensities(
    const SpacetimeSpec& spacetime, const std::vector<double>& workers,
    const std::vector<double>& tasks) {
  assert(workers.size() == static_cast<size_t>(spacetime.num_types()));
  assert(tasks.size() == static_cast<size_t>(spacetime.num_types()));
  PredictionMatrix matrix(spacetime);
  for (size_t t = 0; t < workers.size(); ++t) {
    matrix.workers_[t] =
        static_cast<int32_t>(std::lround(std::max(0.0, workers[t])));
    matrix.tasks_[t] =
        static_cast<int32_t>(std::lround(std::max(0.0, tasks[t])));
  }
  return matrix;
}

PredictionMatrix PredictionMatrix::WithNoise(double relative_sigma,
                                             double phantom_rate,
                                             Rng* rng) const {
  PredictionMatrix noisy = *this;
  auto perturb = [&](std::vector<int32_t>& counts) {
    for (int32_t& c : counts) {
      if (c > 0 && relative_sigma > 0.0) {
        const double factor =
            std::max(0.0, 1.0 + rng->NextGaussian(0.0, relative_sigma));
        c = static_cast<int32_t>(std::lround(c * factor));
      } else if (c == 0 && phantom_rate > 0.0 &&
                 rng->NextBool(phantom_rate)) {
        c = 1;  // Spurious prediction in an empty type.
      }
    }
  };
  perturb(noisy.workers_);
  perturb(noisy.tasks_);
  return noisy;
}

}  // namespace ftoa
