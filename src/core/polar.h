// POLAR (paper Algorithm 2): Prediction-oriented OnLine task Assignment in
// Real-time spatial data. Each arriving object *occupies* an unoccupied
// guide node of its own (slot, area) type — at most one object per node —
// and the pre-computed matching Ĝf dictates the assignment: if the occupied
// node's partner is already occupied, match immediately; otherwise a worker
// is dispatched toward the partner's area and a task waits in place.
// Competitive ratio (1 - 1/e)^2 ~ 0.4 under the i.i.d. model (Theorem 1);
// O(1) processing per arrival.

#ifndef FTOA_CORE_POLAR_H_
#define FTOA_CORE_POLAR_H_

#include <memory>

#include "core/guide.h"
#include "core/online_algorithm.h"
#include "retrieval/mode.h"

namespace ftoa {

/// Behavior knobs shared by the POLAR family.
struct PolarOptions {
  /// When true, a match is only committed if the counterpart object is still
  /// on the platform (its own deadline has not passed). The paper's
  /// analysis assumes guide-feasible pairs always realize ("guide-trust");
  /// the liveness check is a strictly-safer variant used in ablations.
  bool check_liveness = false;

  /// Backend of HybridPolarOp's greedy-fallback candidate scans. kEngine
  /// uses the shared retrieval engine (deadline/time-window pruning plus
  /// per-query stats in the RunTrace); the fallback's nearest answers are
  /// canonical under both backends, so the assignment is bit-identical.
  /// Plain POLAR / POLAR-OP have no spatial scans and ignore this.
  RetrievalMode retrieval = RetrievalMode::kLinear;
};

/// The POLAR algorithm. Sessions share the (immutable) guide.
class Polar : public OnlineAlgorithm {
 public:
  explicit Polar(std::shared_ptr<const OfflineGuide> guide,
                 PolarOptions options = {});

  std::string name() const override { return "POLAR"; }
  const OfflineGuide* guide() const override { return guide_.get(); }

  std::unique_ptr<AssignmentSession> StartSession(
      const Instance& instance) override;

 private:
  std::shared_ptr<const OfflineGuide> guide_;
  PolarOptions options_;
};

}  // namespace ftoa

#endif  // FTOA_CORE_POLAR_H_
