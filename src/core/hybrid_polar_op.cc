#include "core/hybrid_polar_op.h"

#include <vector>

#include "model/arrival_stream.h"
#include "spatial/grid_index.h"

namespace ftoa {

namespace {

struct WaitQueue {
  std::vector<int32_t> items;
  size_t head = 0;

  bool empty() const { return head >= items.size(); }
  void Push(int32_t id) { items.push_back(id); }
  int32_t Pop() { return items[head++]; }
};

}  // namespace

HybridPolarOp::HybridPolarOp(std::shared_ptr<const OfflineGuide> guide,
                             PolarOptions options)
    : guide_(std::move(guide)), options_(options) {}

Assignment HybridPolarOp::DoRun(const Instance& instance, RunTrace* trace) {
  const OfflineGuide& guide = *guide_;
  const SpacetimeSpec& st = guide.spacetime();
  const double velocity = instance.velocity();
  Assignment assignment(instance.num_workers(), instance.num_tasks());

  std::vector<WaitQueue> waiting_at_worker_node(
      static_cast<size_t>(guide.num_worker_nodes()));
  std::vector<WaitQueue> waiting_at_task_node(
      static_cast<size_t>(guide.num_task_nodes()));
  std::vector<uint32_t> worker_type_cursor(
      static_cast<size_t>(st.num_types()), 0);
  std::vector<uint32_t> task_type_cursor(static_cast<size_t>(st.num_types()),
                                         0);

  // Greedy fallback state: every unmatched waiting object is indexed at its
  // *initial* location. Entries are erased when matched (via either path);
  // expired entries are filtered out by the feasibility predicate.
  GridIndex waiting_workers(st.grid());
  GridIndex waiting_tasks(st.grid());
  const double max_radius = MaxFeasibleDistance(
      instance.MaxTaskDuration(), instance.MaxWorkerDuration(), velocity);

  for (const ArrivalEvent& event : BuildArrivalStream(instance)) {
    if (event.kind == ObjectKind::kWorker) {
      const Worker& w = instance.worker(event.index);
      bool matched = false;

      // --- Primary path: POLAR-OP's guide-based association. ---
      const TypeId type = st.TypeOf(w.location, w.start);
      const auto& nodes = guide.WorkerNodesOfType(type);
      GuideNodeId node = -1;
      GuideNodeId partner = -1;
      if (!nodes.empty()) {
        uint32_t& cursor = worker_type_cursor[static_cast<size_t>(type)];
        node = nodes[static_cast<size_t>(cursor++ % nodes.size())];
        partner = guide.worker_nodes()[static_cast<size_t>(node)].partner;
      } else if (trace != nullptr) {
        ++trace->ignored_workers;
      }
      if (partner != -1) {
        WaitQueue& queue =
            waiting_at_task_node[static_cast<size_t>(partner)];
        while (!queue.empty()) {
          const int32_t task_id = queue.Pop();
          if (assignment.IsTaskMatched(task_id)) continue;  // Fallback took it.
          const Task& r = instance.task(task_id);
          if (options_.check_liveness &&
              !CanServe(w, r, velocity,
                        FeasibilityPolicy::kDispatchAtWorkerStart)) {
            continue;
          }
          assignment.Add(w.id, r.id, event.time);
          waiting_tasks.Erase(task_id);
          matched = true;
          break;
        }
      }

      // --- Fallback: nearest waiting feasible task. ---
      if (!matched) {
        const IndexedPoint candidate = waiting_tasks.FindNearest(
            w.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              if (assignment.IsTaskMatched(
                      static_cast<TaskId>(entry.id))) {
                return false;
              }
              const Task& r = instance.task(static_cast<TaskId>(entry.id));
              return CanServe(w, r, velocity,
                              FeasibilityPolicy::kDispatchAtAssignmentTime);
            });
        if (candidate.id >= 0) {
          assignment.Add(w.id, static_cast<TaskId>(candidate.id),
                         event.time);
          waiting_tasks.Erase(candidate.id);
          matched = true;
        }
      }

      if (!matched) {
        if (node != -1 && partner != -1) {
          waiting_at_worker_node[static_cast<size_t>(node)].Push(w.id);
          if (trace != nullptr) {
            const TypeId target_type =
                guide.task_nodes()[static_cast<size_t>(partner)].type;
            trace->dispatches.push_back(DispatchRecord{
                w.id, st.RepresentativeLocation(target_type), event.time});
          }
        }
        waiting_workers.Insert(w.id, w.location);
      }
    } else {
      const Task& r = instance.task(event.index);
      bool matched = false;

      const TypeId type = st.TypeOf(r.location, r.start);
      const auto& nodes = guide.TaskNodesOfType(type);
      GuideNodeId node = -1;
      GuideNodeId partner = -1;
      if (!nodes.empty()) {
        uint32_t& cursor = task_type_cursor[static_cast<size_t>(type)];
        node = nodes[static_cast<size_t>(cursor++ % nodes.size())];
        partner = guide.task_nodes()[static_cast<size_t>(node)].partner;
      } else if (trace != nullptr) {
        ++trace->ignored_tasks;
      }
      if (partner != -1) {
        WaitQueue& queue =
            waiting_at_worker_node[static_cast<size_t>(partner)];
        while (!queue.empty()) {
          const int32_t worker_id = queue.Pop();
          if (assignment.IsWorkerMatched(worker_id)) continue;
          const Worker& w = instance.worker(worker_id);
          if (options_.check_liveness &&
              !CanServe(w, r, velocity,
                        FeasibilityPolicy::kDispatchAtWorkerStart)) {
            continue;
          }
          assignment.Add(w.id, r.id, event.time);
          waiting_workers.Erase(worker_id);
          matched = true;
          break;
        }
      }

      if (!matched) {
        const IndexedPoint candidate = waiting_workers.FindNearest(
            r.location, max_radius,
            [&](const IndexedPoint& entry, double) {
              if (assignment.IsWorkerMatched(
                      static_cast<WorkerId>(entry.id))) {
                return false;
              }
              const Worker& w =
                  instance.worker(static_cast<WorkerId>(entry.id));
              return CanServe(w, r, velocity,
                              FeasibilityPolicy::kDispatchAtAssignmentTime);
            });
        if (candidate.id >= 0) {
          assignment.Add(static_cast<WorkerId>(candidate.id), r.id,
                         event.time);
          waiting_workers.Erase(candidate.id);
          matched = true;
        }
      }

      if (!matched) {
        if (node != -1 && partner != -1) {
          waiting_at_task_node[static_cast<size_t>(node)].Push(r.id);
        }
        waiting_tasks.Insert(r.id, r.location);
      }
    }
  }
  return assignment;
}

}  // namespace ftoa
