#include "core/hybrid_polar_op.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "retrieval/waiting_pool.h"

namespace ftoa {

namespace {

struct WaitQueue {
  std::vector<int32_t> items;
  size_t head = 0;

  bool empty() const { return head >= items.size(); }
  void Push(int32_t id) { items.push_back(id); }
  int32_t Pop() { return items[head++]; }
};

/// One POLAR-OP+G run: POLAR-OP's node queues plus the greedy-fallback
/// waiting pools, hoisted into session state. The pool backend is a
/// template knob (GridWaitingPool = historical grid index;
/// EngineWaitingPool = shared retrieval engine with pruning + stats);
/// Nearest answers are canonical either way, so runs are bit-identical.
template <typename Pool>
class HybridPolarOpSession final : public AssignmentSessionBase {
 public:
  HybridPolarOpSession(const Instance& instance,
                       std::shared_ptr<const OfflineGuide> guide,
                       PolarOptions options)
      : AssignmentSessionBase(instance),
        guide_(std::move(guide)),
        options_(options),
        waiting_at_worker_node_(
            static_cast<size_t>(guide_->num_worker_nodes())),
        waiting_at_task_node_(static_cast<size_t>(guide_->num_task_nodes())),
        worker_type_cursor_(
            static_cast<size_t>(guide_->spacetime().num_types()), 0),
        task_type_cursor_(
            static_cast<size_t>(guide_->spacetime().num_types()), 0),
        // Greedy fallback state: every unmatched waiting object is pooled
        // at its *initial* location. Entries are erased when matched (via
        // either path); expired entries are filtered out by the feasibility
        // predicate (and pruned up front by the engine backend).
        waiting_workers_(guide_->spacetime().grid(), &trace_.retrieval),
        waiting_tasks_(guide_->spacetime().grid(), &trace_.retrieval),
        max_radius_(MaxFeasibleDistance(instance.MaxTaskDuration(),
                                        instance.MaxWorkerDuration(),
                                        instance.velocity())),
        max_task_duration_(instance.MaxTaskDuration()),
        max_worker_duration_(instance.MaxWorkerDuration()) {}

  void OnWorker(WorkerId worker, double time) override {
    const OfflineGuide& guide = *guide_;
    const SpacetimeSpec& st = guide.spacetime();
    const double velocity = instance().velocity();
    const Worker& w = instance().worker(worker);
    bool matched = false;

    // --- Primary path: POLAR-OP's guide-based association. ---
    const TypeId type = st.TypeOf(w.location, w.start);
    const auto& nodes = guide.WorkerNodesOfType(type);
    GuideNodeId node = -1;
    GuideNodeId partner = -1;
    if (!nodes.empty()) {
      uint32_t& cursor = worker_type_cursor_[static_cast<size_t>(type)];
      node = nodes[static_cast<size_t>(cursor++ % nodes.size())];
      partner = guide.worker_nodes()[static_cast<size_t>(node)].partner;
    } else {
      ++trace_.ignored_workers;
    }
    if (partner != -1) {
      WaitQueue& queue = waiting_at_task_node_[static_cast<size_t>(partner)];
      while (!queue.empty()) {
        const int32_t task_id = queue.Pop();
        if (assignment_.IsTaskMatched(task_id)) continue;  // Fallback took it.
        const Task& r = instance().task(task_id);
        if (options_.check_liveness &&
            !CanServe(w, r, velocity,
                      FeasibilityPolicy::kDispatchAtWorkerStart)) {
          continue;
        }
        assignment_.Add(w.id, r.id, time);
        waiting_tasks_.Erase(task_id);
        matched = true;
        break;
      }
    }

    // --- Fallback: nearest waiting feasible task. Feasible tasks started
    // within MaxTaskDuration of now (superset window; CanServe stays the
    // authority, as in simple_greedy.cc). ---
    if (!matched) {
      const int64_t candidate = waiting_tasks_.Nearest(
          w.location, max_radius_, time,
          StartWindow{time - max_task_duration_, time},
          [&](int64_t id, double) {
            if (assignment_.IsTaskMatched(static_cast<TaskId>(id))) {
              return false;
            }
            const Task& r = instance().task(static_cast<TaskId>(id));
            return CanServe(w, r, velocity,
                            FeasibilityPolicy::kDispatchAtAssignmentTime);
          });
      if (candidate >= 0) {
        assignment_.Add(w.id, static_cast<TaskId>(candidate), time);
        waiting_tasks_.Erase(candidate);
        matched = true;
      }
    }

    if (!matched) {
      if (node != -1 && partner != -1) {
        waiting_at_worker_node_[static_cast<size_t>(node)].Push(w.id);
        if (collect_dispatches()) {
          const TypeId target_type =
              guide.task_nodes()[static_cast<size_t>(partner)].type;
          trace_.dispatches.push_back(DispatchRecord{
              w.id, st.RepresentativeLocation(target_type), time});
        }
      }
      waiting_workers_.Insert(w.id, w.location, w.start, w.Deadline());
    }
  }

  void OnTask(TaskId task, double time) override {
    const OfflineGuide& guide = *guide_;
    const SpacetimeSpec& st = guide.spacetime();
    const double velocity = instance().velocity();
    const Task& r = instance().task(task);
    bool matched = false;

    const TypeId type = st.TypeOf(r.location, r.start);
    const auto& nodes = guide.TaskNodesOfType(type);
    GuideNodeId node = -1;
    GuideNodeId partner = -1;
    if (!nodes.empty()) {
      uint32_t& cursor = task_type_cursor_[static_cast<size_t>(type)];
      node = nodes[static_cast<size_t>(cursor++ % nodes.size())];
      partner = guide.task_nodes()[static_cast<size_t>(node)].partner;
    } else {
      ++trace_.ignored_tasks;
    }
    if (partner != -1) {
      WaitQueue& queue =
          waiting_at_worker_node_[static_cast<size_t>(partner)];
      while (!queue.empty()) {
        const int32_t worker_id = queue.Pop();
        if (assignment_.IsWorkerMatched(worker_id)) continue;
        const Worker& w = instance().worker(worker_id);
        if (options_.check_liveness &&
            !CanServe(w, r, velocity,
                      FeasibilityPolicy::kDispatchAtWorkerStart)) {
          continue;
        }
        assignment_.Add(w.id, r.id, time);
        waiting_workers_.Erase(worker_id);
        matched = true;
        break;
      }
    }

    if (!matched) {
      const int64_t candidate = waiting_workers_.Nearest(
          r.location, max_radius_, time,
          StartWindow{time - max_worker_duration_, time},
          [&](int64_t id, double) {
            if (assignment_.IsWorkerMatched(static_cast<WorkerId>(id))) {
              return false;
            }
            const Worker& w = instance().worker(static_cast<WorkerId>(id));
            return CanServe(w, r, velocity,
                            FeasibilityPolicy::kDispatchAtAssignmentTime);
          });
      if (candidate >= 0) {
        assignment_.Add(static_cast<WorkerId>(candidate), r.id, time);
        waiting_workers_.Erase(candidate);
        matched = true;
      }
    }

    if (!matched) {
      if (node != -1 && partner != -1) {
        waiting_at_task_node_[static_cast<size_t>(node)].Push(r.id);
      }
      waiting_tasks_.Insert(r.id, r.location, r.start, r.Deadline());
    }
  }

  bool SwapGuide(std::shared_ptr<const OfflineGuide> guide) override {
    if (guide == nullptr || guide->spacetime().num_types() !=
                                guide_->spacetime().num_types()) {
      return false;
    }
    guide_ = std::move(guide);
    // Node queues and cursors follow the guide and restart empty. The
    // greedy-fallback waiting pools are guide-independent (keyed by object
    // id and initial location), so objects dropped from a node queue stay
    // reachable through the fallback path.
    waiting_at_worker_node_.assign(
        static_cast<size_t>(guide_->num_worker_nodes()), WaitQueue{});
    waiting_at_task_node_.assign(
        static_cast<size_t>(guide_->num_task_nodes()), WaitQueue{});
    std::fill(worker_type_cursor_.begin(), worker_type_cursor_.end(), 0u);
    std::fill(task_type_cursor_.begin(), task_type_cursor_.end(), 0u);
    return true;
  }

 private:
  std::shared_ptr<const OfflineGuide> guide_;
  PolarOptions options_;
  std::vector<WaitQueue> waiting_at_worker_node_;
  std::vector<WaitQueue> waiting_at_task_node_;
  std::vector<uint32_t> worker_type_cursor_;
  std::vector<uint32_t> task_type_cursor_;
  Pool waiting_workers_;
  Pool waiting_tasks_;
  double max_radius_;
  double max_task_duration_;
  double max_worker_duration_;
};

}  // namespace

HybridPolarOp::HybridPolarOp(std::shared_ptr<const OfflineGuide> guide,
                             PolarOptions options)
    : guide_(std::move(guide)), options_(options) {}

std::unique_ptr<AssignmentSession> HybridPolarOp::StartSession(
    const Instance& instance) {
  if (options_.retrieval == RetrievalMode::kEngine) {
    return std::make_unique<HybridPolarOpSession<EngineWaitingPool>>(
        instance, guide_, options_);
  }
  return std::make_unique<HybridPolarOpSession<GridWaitingPool>>(
      instance, guide_, options_);
}

}  // namespace ftoa
