// OfflineGuide: the pseudo-assignment Ĝf produced by offline guide
// generation (paper Section 4). Predicted counts are instantiated into
// typed nodes; a maximum bipartite matching pairs worker nodes with task
// nodes. The online algorithms then let real objects occupy (POLAR) or
// associate with (POLAR-OP) nodes of their own type.

#ifndef FTOA_CORE_GUIDE_H_
#define FTOA_CORE_GUIDE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "model/feasibility.h"
#include "spatial/spacetime.h"
#include "util/status.h"

namespace ftoa {

/// Index of a guide node within its side's node vector.
using GuideNodeId = int32_t;

/// One predicted node of the bipartite guide graph.
struct GuideNode {
  TypeId type = -1;
  /// Matched partner on the other side in Ĝf, or -1 when unmatched.
  GuideNodeId partner = -1;
};

/// The immutable offline guide shared by POLAR-family algorithms.
class OfflineGuide {
 public:
  OfflineGuide() = default;

  /// `worker_duration` / `task_duration` are the representative Dw / Dr the
  /// generator used for its edge feasibility tests; `representative_slack`
  /// is the discretization slack it granted (GuideOptions).
  OfflineGuide(SpacetimeSpec spacetime, double velocity,
               double worker_duration, double task_duration,
               double representative_slack = 0.0);

  const SpacetimeSpec& spacetime() const { return spacetime_; }
  double velocity() const { return velocity_; }
  double worker_duration() const { return worker_duration_; }
  double task_duration() const { return task_duration_; }
  double representative_slack() const { return representative_slack_; }

  /// Appends a worker node of `type`; returns its id.
  GuideNodeId AddWorkerNode(TypeId type);
  /// Appends a task node of `type`; returns its id.
  GuideNodeId AddTaskNode(TypeId type);

  /// Marks (worker node, task node) as a matched pair of Ĝf.
  /// Both must be currently unmatched.
  Status MatchNodes(GuideNodeId worker_node, GuideNodeId task_node);

  const std::vector<GuideNode>& worker_nodes() const { return worker_nodes_; }
  const std::vector<GuideNode>& task_nodes() const { return task_nodes_; }

  /// Ids of worker nodes of a given type, in creation order.
  const std::vector<GuideNodeId>& WorkerNodesOfType(TypeId type) const {
    return worker_nodes_by_type_[static_cast<size_t>(type)];
  }
  /// Ids of task nodes of a given type, in creation order.
  const std::vector<GuideNodeId>& TaskNodesOfType(TypeId type) const {
    return task_nodes_by_type_[static_cast<size_t>(type)];
  }

  /// |E*|: the number of matched node pairs (the flow value of Algorithm 1).
  int64_t matched_pairs() const { return matched_pairs_; }

  /// Dense key of a (worker type, task type) pair in the capacity
  /// accounting below.
  int64_t TypePairKey(TypeId worker_type, TypeId task_type) const {
    return static_cast<int64_t>(worker_type) * spacetime_.num_types() +
           task_type;
  }

  /// Capacity accounting of Ĝf: how many matched node pairs connect each
  /// (worker type, task type), keyed by TypePairKey. This is the per-flow
  /// multiplicity the POLAR family realizes along — a pass adding pairs on
  /// a guided algorithm's behalf (boundary reconciliation) bounds its
  /// per-type-pair additions by these counts, mirroring how each shard's
  /// session consumes the guide. O(matched_pairs()); build once per pass.
  std::unordered_map<int64_t, int32_t> MatchedPairCountsByTypePair() const;

  /// m: the number of predicted worker nodes.
  int64_t num_worker_nodes() const {
    return static_cast<int64_t>(worker_nodes_.size());
  }
  /// n: the number of predicted task nodes.
  int64_t num_task_nodes() const {
    return static_cast<int64_t>(task_nodes_.size());
  }

  /// Checks every matched pair against the type-representative feasibility
  /// predicate the guide was built with (deadline constraint of
  /// Definition 4 on cell centers and slot midpoints).
  Status Validate() const;

 private:
  SpacetimeSpec spacetime_;
  double velocity_ = 1.0;
  double worker_duration_ = 0.0;
  double task_duration_ = 0.0;
  double representative_slack_ = 0.0;
  std::vector<GuideNode> worker_nodes_;
  std::vector<GuideNode> task_nodes_;
  std::vector<std::vector<GuideNodeId>> worker_nodes_by_type_;
  std::vector<std::vector<GuideNodeId>> task_nodes_by_type_;
  int64_t matched_pairs_ = 0;
};

}  // namespace ftoa

#endif  // FTOA_CORE_GUIDE_H_
