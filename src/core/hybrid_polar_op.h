// HybridPolarOp: POLAR-OP extended with a greedy fallback (our extension of
// the paper's Section 5 "optimizations", exercised by the E16 ablation).
//
// POLAR-OP only realizes matches along the edges of the offline guide;
// objects associated with nodes left unmatched by Ĝf — or of types the
// prediction missed entirely — can never be matched, even when a feasible
// counterpart is waiting nearby. The hybrid keeps the guide as the primary
// mechanism (preserving its dispatching and its O(1) fast path) and, only
// when the guide yields no match, falls back to a SimpleGreedy-style nearest
// feasible search over the currently waiting counterpart objects. Under
// accurate predictions it behaves like POLAR-OP; under misprediction it
// degrades toward SimpleGreedy instead of dropping objects.

#ifndef FTOA_CORE_HYBRID_POLAR_OP_H_
#define FTOA_CORE_HYBRID_POLAR_OP_H_

#include <memory>

#include "core/guide.h"
#include "core/online_algorithm.h"
#include "core/polar.h"

namespace ftoa {

/// POLAR-OP with greedy fallback matching.
class HybridPolarOp : public OnlineAlgorithm {
 public:
  explicit HybridPolarOp(std::shared_ptr<const OfflineGuide> guide,
                         PolarOptions options = {});

  std::string name() const override { return "POLAR-OP+G"; }
  const OfflineGuide* guide() const override { return guide_.get(); }

  std::unique_ptr<AssignmentSession> StartSession(
      const Instance& instance) override;

 private:
  std::shared_ptr<const OfflineGuide> guide_;
  PolarOptions options_;
};

}  // namespace ftoa

#endif  // FTOA_CORE_HYBRID_POLAR_OP_H_
