// Name-based construction of the online-assignment algorithms, mirroring
// prediction/registry for the Table 5 predictors. One canonical name per
// algorithm (the CLI spelling); every front end — ftoa_cli, the bench
// harness, the competitive-ratio driver — builds algorithms through
// CreateAlgorithm instead of its own if/else chain.

#ifndef FTOA_CORE_ALGORITHM_REGISTRY_H_
#define FTOA_CORE_ALGORITHM_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/gr_batch.h"
#include "baselines/simple_greedy.h"
#include "baselines/tgoa.h"
#include "core/guide.h"
#include "core/online_algorithm.h"
#include "core/polar.h"
#include "util/result.h"

namespace ftoa {

/// Everything an algorithm constructor may need. Only the guide is a true
/// dependency (required by the POLAR family); the option structs default to
/// each algorithm's paper configuration.
struct AlgorithmDeps {
  /// Offline guide Ĝf shared by all POLAR-family sessions. Must be set for
  /// "polar", "polar-op", and "polar-op-g"; ignored by the rest.
  std::shared_ptr<const OfflineGuide> guide;

  PolarOptions polar_options;
  SimpleGreedyOptions simple_greedy_options;
  TgoaOptions tgoa_options;
  GrBatchOptions gr_options;

  /// Master candidate-retrieval switch (the CLI's --retrieval flag). When
  /// set to kEngine it overrides the per-algorithm option structs above for
  /// every algorithm that scans candidates spatially (simple-greedy, tgoa,
  /// polar-op-g); kLinear (the default) leaves the structs untouched.
  RetrievalMode retrieval = RetrievalMode::kLinear;
};

/// Canonical names of all registered algorithms, in the paper's evaluation
/// order: simple-greedy, gr, tgoa, polar, polar-op, polar-op-g, opt.
std::vector<std::string> AllAlgorithmNames();

/// True iff `name` denotes a POLAR-family algorithm, i.e. CreateAlgorithm
/// requires deps.guide to be set. Unknown names return false (creation
/// reports them as NotFound).
bool AlgorithmNeedsGuide(const std::string& name);

/// Display name ("POLAR-OP") for a canonical registry name, without
/// constructing the algorithm; empty for unknown names. Matches what the
/// constructed object's name() reports in its default configuration.
std::string AlgorithmDisplayName(const std::string& name);

/// Constructs an algorithm by its canonical name (case-sensitive). Returns
/// NotFound for unknown names (the message lists the valid set) and
/// InvalidArgument when a guide-based algorithm is requested without a
/// guide.
Result<std::unique_ptr<OnlineAlgorithm>> CreateAlgorithm(
    const std::string& name, const AlgorithmDeps& deps = {});

}  // namespace ftoa

#endif  // FTOA_CORE_ALGORITHM_REGISTRY_H_
