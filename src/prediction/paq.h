// PAQ — Predictive Aggregation Queries (paper Section 6.3, citing Hendawi &
// Mokbel and Sun et al.): aggregate queries over the moving objects of "the
// 6 latest hours". We model the aggregate as an exponentially-decayed
// average of the most recent slots of the same cell plus a first-order
// trend, i.e. the continuous query "how many objects will be in cell j next
// slot given their recent presence" — the same signal trajectory
// extrapolation would produce at slot granularity.

#ifndef FTOA_PREDICTION_PAQ_H_
#define FTOA_PREDICTION_PAQ_H_

#include <vector>

#include "prediction/predictor.h"

namespace ftoa {

/// PAQ hyperparameters.
struct PaqParams {
  /// Length of the aggregation window in hours (the paper's setting).
  double window_hours = 6.0;
  /// Geometric decay applied to older slots in the window.
  double decay = 0.8;
  /// Weight of the first-order trend correction.
  double trend_weight = 0.5;
};

/// The PAQ entry of Table 5.
class PaqPredictor : public Predictor {
 public:
  explicit PaqPredictor(PaqParams params = {}) : params_(params) {}

  std::string name() const override { return "PAQ"; }

  Status Fit(const DemandDataset& data, int train_days,
             DemandSide side) override;

  std::vector<double> Predict(const DemandDataset& data, int day,
                              int slot) const override;

 private:
  PaqParams params_;
  DemandSide side_ = DemandSide::kTasks;
  int window_slots_ = 1;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_PAQ_H_
