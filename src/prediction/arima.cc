#include "prediction/arima.h"

#include <algorithm>

#include "util/linalg.h"

namespace ftoa {

namespace {

/// Longer autoregression order used to estimate innovations (stage 1 of
/// Hannan-Rissanen).
constexpr int kLongArOrder = 5;
/// Innovations are reconstructed over this many trailing steps at predict
/// time.
constexpr int kInnovationWindow = 64;

}  // namespace

double ArimaPredictor::SeriesAt(const DemandDataset& data, int cell,
                                int t) const {
  const int day = t / slots_per_day_;
  const int slot = t % slots_per_day_;
  return data.count(side_, day, slot, cell);
}

Status ArimaPredictor::Fit(const DemandDataset& data, int train_days,
                           DemandSide side) {
  side_ = side;
  slots_per_day_ = data.slots_per_day();
  const int steps = train_days * slots_per_day_;
  if (steps < kLongArOrder + 8) {
    return Status::InvalidArgument("ARIMA: training series too short");
  }
  models_.assign(static_cast<size_t>(data.num_cells()), CellModel{});

  std::vector<double> diff(static_cast<size_t>(steps - 1));
  std::vector<double> innovations(diff.size(), 0.0);

  for (int cell = 0; cell < data.num_cells(); ++cell) {
    // First difference of the chronological series.
    for (int t = 1; t < steps; ++t) {
      diff[static_cast<size_t>(t - 1)] =
          SeriesAt(data, cell, t) - SeriesAt(data, cell, t - 1);
    }

    // Stage 1: long AR(kLongArOrder) by least squares -> innovations.
    const int n1 = static_cast<int>(diff.size()) - kLongArOrder;
    if (n1 < 8) continue;
    Matrix design1(static_cast<size_t>(n1), kLongArOrder + 1);
    std::vector<double> target1(static_cast<size_t>(n1));
    for (int i = 0; i < n1; ++i) {
      design1(static_cast<size_t>(i), 0) = 1.0;
      for (int k = 1; k <= kLongArOrder; ++k) {
        design1(static_cast<size_t>(i), static_cast<size_t>(k)) =
            diff[static_cast<size_t>(i + kLongArOrder - k)];
      }
      target1[static_cast<size_t>(i)] =
          diff[static_cast<size_t>(i + kLongArOrder)];
    }
    auto stage1 = SolveLeastSquares(design1, target1, 1e-6);
    if (!stage1.ok()) continue;  // Degenerate cell: fall back.
    const std::vector<double>& ar_long = stage1.value();

    std::fill(innovations.begin(), innovations.end(), 0.0);
    for (int i = 0; i < n1; ++i) {
      double fitted = ar_long[0];
      for (int k = 1; k <= kLongArOrder; ++k) {
        fitted += ar_long[static_cast<size_t>(k)] *
                  diff[static_cast<size_t>(i + kLongArOrder - k)];
      }
      innovations[static_cast<size_t>(i + kLongArOrder)] =
          diff[static_cast<size_t>(i + kLongArOrder)] - fitted;
    }

    // Stage 2: z_t = c + phi * z_{t-1} + theta * e_{t-1}.
    const int start = kLongArOrder + 1;
    const int n2 = static_cast<int>(diff.size()) - start;
    if (n2 < 8) continue;
    Matrix design2(static_cast<size_t>(n2), 3);
    std::vector<double> target2(static_cast<size_t>(n2));
    for (int i = 0; i < n2; ++i) {
      const int t = start + i;
      design2(static_cast<size_t>(i), 0) = 1.0;
      design2(static_cast<size_t>(i), 1) = diff[static_cast<size_t>(t - 1)];
      design2(static_cast<size_t>(i), 2) =
          innovations[static_cast<size_t>(t - 1)];
      target2[static_cast<size_t>(i)] = diff[static_cast<size_t>(t)];
    }
    auto stage2 = SolveLeastSquares(design2, target2, 1e-6);
    if (!stage2.ok()) continue;
    CellModel& model = models_[static_cast<size_t>(cell)];
    model.valid = true;
    model.intercept = stage2.value()[0];
    // Clamp for forecast stability.
    model.ar = std::clamp(stage2.value()[1], -0.98, 0.98);
    model.ma = std::clamp(stage2.value()[2], -0.98, 0.98);
  }
  return Status::OK();
}

std::vector<double> ArimaPredictor::Predict(const DemandDataset& data,
                                            int day, int slot) const {
  std::vector<double> out(static_cast<size_t>(data.num_cells()), 0.0);
  const int target_step = day * slots_per_day_ + slot;
  const int last = target_step - 1;  // Last observed chronological step.
  for (int cell = 0; cell < data.num_cells(); ++cell) {
    const double last_value = last >= 0 ? SeriesAt(data, cell, last) : 0.0;
    const CellModel& model = models_[static_cast<size_t>(cell)];
    if (!model.valid || last < 1) {
      out[static_cast<size_t>(cell)] = std::max(0.0, last_value);
      continue;
    }
    // Reconstruct innovations over a trailing window ending at `last`.
    const int window_start = std::max(1, last - kInnovationWindow);
    double prev_innovation = 0.0;
    for (int t = window_start; t <= last; ++t) {
      const double z =
          SeriesAt(data, cell, t) - SeriesAt(data, cell, t - 1);
      const double z_prev =
          t - 1 >= 1
              ? SeriesAt(data, cell, t - 1) - SeriesAt(data, cell, t - 2)
              : 0.0;
      const double fitted =
          model.intercept + model.ar * z_prev + model.ma * prev_innovation;
      prev_innovation = z - fitted;
    }
    const double z_last =
        last >= 1 ? SeriesAt(data, cell, last) - SeriesAt(data, cell, last - 1)
                  : 0.0;
    const double z_hat =
        model.intercept + model.ar * z_last + model.ma * prev_innovation;
    out[static_cast<size_t>(cell)] = std::max(0.0, last_value + z_hat);
  }
  return out;
}

}  // namespace ftoa
