// HP-MSI — the hierarchical prediction model with multi-similarity-based
// inference of Li et al. ("Traffic prediction in a bike-sharing system",
// GIS 2015), the best-performing predictor in the paper's Table 5.
//
// Structure (following the reference):
//  1. Cells are clustered by their normalized demand profiles (k-means++
//     on per-slot means) — the hierarchy's upper level.
//  2. A GBRT model predicts each *cluster's* total for the target slot —
//     aggregate series are far less noisy than per-cell ones.
//  3. The cluster total is distributed to member cells by multi-similarity
//     inference: a cell's share is the similarity-weighted average of its
//     historical shares in training slots with similar calendar and weather
//     context.

#ifndef FTOA_PREDICTION_HP_MSI_H_
#define FTOA_PREDICTION_HP_MSI_H_

#include <cstdint>
#include <vector>

#include "prediction/gbrt.h"
#include "prediction/predictor.h"

namespace ftoa {

/// HP-MSI hyperparameters.
struct HpMsiParams {
  /// Number of clusters; <= 0 chooses automatically from the cell count.
  int num_clusters = 0;
  int kmeans_iterations = 25;
  uint64_t seed = 0xc1a5;
  /// Temperature scale (deg C) of the weather similarity kernel.
  double temperature_scale = 8.0;
  /// Similarity multiplier when day-of-week classes (weekday/weekend)
  /// differ.
  double calendar_mismatch = 0.35;
  /// Similarity multiplier when rain presence differs.
  double rain_mismatch = 0.4;
  GbrtParams gbrt;
};

/// The HP-MSI entry of Table 5.
class HpMsiPredictor : public Predictor {
 public:
  explicit HpMsiPredictor(HpMsiParams params = {}) : params_(params) {}

  std::string name() const override { return "HP-MSI"; }

  Status Fit(const DemandDataset& data, int train_days,
             DemandSide side) override;

  std::vector<double> Predict(const DemandDataset& data, int day,
                              int slot) const override;

  /// Cluster id per cell (exposed for tests).
  const std::vector<int>& cluster_of_cell() const { return cluster_of_cell_; }
  int num_clusters() const { return num_clusters_; }

 private:
  double ContextSimilarity(const DemandDataset& data, int day_a, int slot_a,
                           int day_b) const;

  HpMsiParams params_;
  DemandSide side_ = DemandSide::kTasks;
  int train_days_ = 0;
  int num_clusters_ = 0;
  std::vector<int> cluster_of_cell_;
  std::vector<std::vector<int>> cluster_members_;
  DemandDataset cluster_data_;  ///< Cluster-aggregated copy of the history.
  GbrtPredictor cluster_model_;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_HP_MSI_H_
