#include "prediction/hp_msi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.h"

namespace ftoa {

namespace {

/// k-means++ over row-major profile vectors; returns per-row cluster ids.
std::vector<int> KMeans(const std::vector<double>& profiles, int rows,
                        int dim, int k, int iterations, uint64_t seed) {
  Rng rng(seed);
  auto row = [&](int r) { return &profiles[static_cast<size_t>(r) * dim]; };
  auto sq_dist = [&](const double* a, const double* b) {
    double s = 0.0;
    for (int f = 0; f < dim; ++f) {
      const double d = a[f] - b[f];
      s += d * d;
    }
    return s;
  };

  // k-means++ seeding.
  std::vector<double> centers(static_cast<size_t>(k) * dim, 0.0);
  std::vector<double> min_dist(static_cast<size_t>(rows),
                               std::numeric_limits<double>::infinity());
  int first = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(rows)));
  std::copy(row(first), row(first) + dim, centers.begin());
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (int r = 0; r < rows; ++r) {
      const double d =
          sq_dist(row(r), &centers[static_cast<size_t>(c - 1) * dim]);
      min_dist[static_cast<size_t>(r)] =
          std::min(min_dist[static_cast<size_t>(r)], d);
      total += min_dist[static_cast<size_t>(r)];
    }
    double pick = rng.NextDouble() * total;
    int chosen = rows - 1;
    for (int r = 0; r < rows; ++r) {
      pick -= min_dist[static_cast<size_t>(r)];
      if (pick <= 0.0) {
        chosen = r;
        break;
      }
    }
    std::copy(row(chosen), row(chosen) + dim,
              centers.begin() + static_cast<size_t>(c) * dim);
  }

  std::vector<int> assignment(static_cast<size_t>(rows), 0);
  std::vector<int> counts(static_cast<size_t>(k), 0);
  for (int iter = 0; iter < iterations; ++iter) {
    bool changed = false;
    for (int r = 0; r < rows; ++r) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d =
            sq_dist(row(r), &centers[static_cast<size_t>(c) * dim]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (assignment[static_cast<size_t>(r)] != best) {
        assignment[static_cast<size_t>(r)] = best;
        changed = true;
      }
    }
    std::fill(centers.begin(), centers.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (int r = 0; r < rows; ++r) {
      const int c = assignment[static_cast<size_t>(r)];
      ++counts[static_cast<size_t>(c)];
      double* center = &centers[static_cast<size_t>(c) * dim];
      const double* p = row(r);
      for (int f = 0; f < dim; ++f) center[f] += p[f];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      double* center = &centers[static_cast<size_t>(c) * dim];
      for (int f = 0; f < dim; ++f) {
        center[f] /= counts[static_cast<size_t>(c)];
      }
    }
    if (!changed) break;
  }
  return assignment;
}

}  // namespace

double HpMsiPredictor::ContextSimilarity(const DemandDataset& data, int day_a,
                                         int slot_a, int day_b) const {
  // Compares the target context (day_a, slot_a) with the same slot of
  // training day day_b.
  double similarity = 1.0;
  const bool weekend_a = data.day_of_week(day_a) >= 5;
  const bool weekend_b = data.day_of_week(day_b) >= 5;
  if (weekend_a != weekend_b) similarity *= params_.calendar_mismatch;
  const WeatherSample& wa = data.weather(day_a, slot_a);
  const WeatherSample& wb = data.weather(day_b, slot_a);
  similarity *= std::exp(-std::fabs(wa.temperature - wb.temperature) /
                         params_.temperature_scale);
  if ((wa.precipitation > 0.1) != (wb.precipitation > 0.1)) {
    similarity *= params_.rain_mismatch;
  }
  return similarity;
}

Status HpMsiPredictor::Fit(const DemandDataset& data, int train_days,
                           DemandSide side) {
  side_ = side;
  train_days_ = train_days;
  const int cells = data.num_cells();
  const int slots = data.slots_per_day();
  if (train_days <= DemandFeatures::kDayLags) {
    return Status::InvalidArgument("HP-MSI: too few training days");
  }

  // --- Level 1: cluster cells by normalized demand profile. ---
  num_clusters_ = params_.num_clusters > 0
                      ? params_.num_clusters
                      : std::clamp(cells / 25, 2, 16);
  num_clusters_ = std::min(num_clusters_, cells);
  std::vector<double> profiles(static_cast<size_t>(cells) * (slots + 1), 0.0);
  for (int cell = 0; cell < cells; ++cell) {
    double total = 0.0;
    double* profile = &profiles[static_cast<size_t>(cell) * (slots + 1)];
    for (int slot = 0; slot < slots; ++slot) {
      double mean = 0.0;
      for (int day = 0; day < train_days; ++day) {
        mean += data.count(side, day, slot, cell);
      }
      mean /= train_days;
      profile[slot] = mean;
      total += mean;
    }
    if (total > 0.0) {
      for (int slot = 0; slot < slots; ++slot) profile[slot] /= total;
    }
    // Magnitude feature so dense and empty cells do not co-cluster.
    profile[slots] = std::log1p(total);
  }
  cluster_of_cell_ = KMeans(profiles, cells, slots + 1, num_clusters_,
                            params_.kmeans_iterations, params_.seed);
  cluster_members_.assign(static_cast<size_t>(num_clusters_), {});
  for (int cell = 0; cell < cells; ++cell) {
    cluster_members_[static_cast<size_t>(cluster_of_cell_[
        static_cast<size_t>(cell)])].push_back(cell);
  }

  // --- Level 2: cluster-aggregated dataset + GBRT on cluster totals. ---
  cluster_data_ = DemandDataset(data.num_days(), slots, num_clusters_);
  for (int day = 0; day < data.num_days(); ++day) {
    cluster_data_.set_day_of_week(day, data.day_of_week(day));
    for (int slot = 0; slot < slots; ++slot) {
      cluster_data_.set_weather(day, slot, data.weather(day, slot));
      for (int cell = 0; cell < cells; ++cell) {
        const int c = cluster_of_cell_[static_cast<size_t>(cell)];
        cluster_data_.set_workers(
            day, slot, c,
            cluster_data_.workers(day, slot, c) +
                data.workers(day, slot, cell));
        cluster_data_.set_tasks(day, slot, c,
                                cluster_data_.tasks(day, slot, c) +
                                    data.tasks(day, slot, cell));
      }
    }
  }
  GbrtParams gbrt_params = params_.gbrt;
  cluster_model_ = GbrtPredictor(gbrt_params);
  return cluster_model_.Fit(cluster_data_, train_days, side);
}

std::vector<double> HpMsiPredictor::Predict(const DemandDataset& data,
                                            int day, int slot) const {
  const int cells = data.num_cells();
  std::vector<double> out(static_cast<size_t>(cells), 0.0);

  // Level 2 prediction: cluster totals.
  const std::vector<double> totals =
      cluster_model_.Predict(cluster_data_, day, slot);

  // Level 3: multi-similarity share inference per cluster.
  for (int c = 0; c < num_clusters_; ++c) {
    const std::vector<int>& members =
        cluster_members_[static_cast<size_t>(c)];
    if (members.empty()) continue;
    std::vector<double> share(members.size(), 0.0);
    double weight_total = 0.0;
    for (int d = 0; d < train_days_; ++d) {
      double cluster_total = 0.0;
      for (int cell : members) {
        cluster_total += data.count(side_, d, slot, cell);
      }
      if (cluster_total <= 0.0) continue;
      const double w = ContextSimilarity(data, day, slot, d);
      weight_total += w;
      for (size_t mi = 0; mi < members.size(); ++mi) {
        share[mi] +=
            w * data.count(side_, d, slot, members[mi]) / cluster_total;
      }
    }
    if (weight_total <= 0.0) {
      // No informative history: split evenly.
      for (size_t mi = 0; mi < members.size(); ++mi) {
        share[mi] = 1.0 / static_cast<double>(members.size());
      }
      weight_total = 1.0;
    }
    const double total = std::max(0.0, totals[static_cast<size_t>(c)]);
    for (size_t mi = 0; mi < members.size(); ++mi) {
      out[static_cast<size_t>(members[mi])] =
          total * share[mi] / weight_total;
    }
  }
  return out;
}

}  // namespace ftoa
