#include "prediction/linear_regression.h"

#include <algorithm>

#include "util/linalg.h"

namespace ftoa {

std::vector<double> LinearRegressionPredictor::Features(
    const DemandDataset& data, int day, int slot, int cell) const {
  std::vector<double> features;
  features.reserve(1 + 2 * static_cast<size_t>(lags_));
  features.push_back(1.0);  // Bias.
  for (int lag = 1; lag <= lags_; ++lag) {
    const int past = day - lag;
    const double own =
        past >= 0 ? data.count(side_, past, slot, cell) : 0.0;
    const double other =
        past >= 0
            ? data.count(side_ == DemandSide::kWorkers ? DemandSide::kTasks
                                                       : DemandSide::kWorkers,
                         past, slot, cell)
            : 0.0;
    features.push_back(own);
    features.push_back(other);
  }
  return features;
}

Status LinearRegressionPredictor::Fit(const DemandDataset& data,
                                      int train_days, DemandSide side) {
  side_ = side;
  if (train_days <= lags_) {
    return Status::InvalidArgument(
        "LR: need more training days than lags");
  }
  // Assemble the pooled design matrix over all (day, slot, cell) targets
  // with a full lag window. Cells are subsampled deterministically when the
  // problem is large (the normal equations only need sufficient statistics,
  // but row subsampling keeps assembly cheap).
  const int num_cells = data.num_cells();
  const int cell_stride = std::max(1, num_cells / 512);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (int day = lags_; day < train_days; ++day) {
    for (int slot = 0; slot < data.slots_per_day(); ++slot) {
      for (int cell = 0; cell < num_cells; cell += cell_stride) {
        rows.push_back(Features(data, day, slot, cell));
        targets.push_back(data.count(side_, day, slot, cell));
      }
    }
  }
  if (rows.empty()) {
    return Status::InvalidArgument("LR: empty training set");
  }
  Matrix design(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < rows[i].size(); ++j) design(i, j) = rows[i][j];
  }
  auto solved = SolveLeastSquares(design, targets, /*lambda=*/1e-3);
  if (!solved.ok()) return solved.status();
  coefficients_ = std::move(solved).value();
  return Status::OK();
}

std::vector<double> LinearRegressionPredictor::Predict(
    const DemandDataset& data, int day, int slot) const {
  std::vector<double> out(static_cast<size_t>(data.num_cells()), 0.0);
  for (int cell = 0; cell < data.num_cells(); ++cell) {
    const std::vector<double> features = Features(data, day, slot, cell);
    out[static_cast<size_t>(cell)] =
        std::max(0.0, Dot(features, coefficients_));
  }
  return out;
}

}  // namespace ftoa
