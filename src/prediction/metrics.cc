#include "prediction/metrics.h"

#include <cassert>
#include <cmath>

namespace ftoa {

void PredictionScorer::AddSlot(const std::vector<double>& actual,
                               const std::vector<double>& predicted) {
  assert(actual.size() == predicted.size());
  if (actual.empty()) return;
  double abs_error = 0.0;
  double actual_sum = 0.0;
  double log_error_sq = 0.0;
  for (size_t j = 0; j < actual.size(); ++j) {
    abs_error += std::fabs(actual[j] - predicted[j]);
    actual_sum += actual[j];
    const double diff =
        std::log(actual[j] + 1.0) - std::log(std::max(0.0, predicted[j]) + 1.0);
    log_error_sq += diff * diff;
  }
  // Slots with zero actual demand contribute ER = |error| / 1 (avoid 0/0;
  // a perfect prediction still scores 0).
  er_sum_ += abs_error / std::max(actual_sum, 1.0);
  rmsle_sum_ += std::sqrt(log_error_sq / static_cast<double>(actual.size()));
  ++slots_;
}

PredictionScore PredictionScorer::Score() const {
  PredictionScore score;
  score.evaluated_slots = slots_;
  if (slots_ == 0) return score;
  score.error_rate = er_sum_ / slots_;
  score.rmsle = rmsle_sum_ / slots_;
  return score;
}

Result<PredictionScore> EvaluatePredictor(Predictor* predictor,
                                          const DemandDataset& data,
                                          int train_days, DemandSide side) {
  if (train_days <= 0 || train_days >= data.num_days()) {
    return Status::InvalidArgument(
        "EvaluatePredictor: train_days must split the dataset");
  }
  FTOA_RETURN_NOT_OK(predictor->Fit(data, train_days, side));

  PredictionScorer scorer;
  std::vector<double> actual(static_cast<size_t>(data.num_cells()));
  for (int day = train_days; day < data.num_days(); ++day) {
    for (int slot = 0; slot < data.slots_per_day(); ++slot) {
      const std::vector<double> predicted = predictor->Predict(data, day, slot);
      if (predicted.size() != actual.size()) {
        return Status::Internal(predictor->name() +
                                ": wrong prediction vector size");
      }
      for (int cell = 0; cell < data.num_cells(); ++cell) {
        actual[static_cast<size_t>(cell)] = data.count(side, day, slot, cell);
      }
      scorer.AddSlot(actual, predicted);
    }
  }
  return scorer.Score();
}

}  // namespace ftoa
