// DemandDataset: multi-day history of per-(slot, cell) worker and task
// counts plus exogenous covariates (weather, day-of-week) — the training
// input of the offline-prediction step (paper Section 6.3).

#ifndef FTOA_PREDICTION_DATASET_H_
#define FTOA_PREDICTION_DATASET_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace ftoa {

/// Exogenous weather covariates for one (day, slot).
struct WeatherSample {
  double temperature = 20.0;   ///< Degrees Celsius.
  double precipitation = 0.0;  ///< mm/h; 0 when dry.
};

/// Which side of the market a predictor models.
enum class DemandSide { kWorkers, kTasks };

/// Dense [day][slot][cell] count history for both market sides.
class DemandDataset {
 public:
  DemandDataset() = default;

  /// All-zero dataset of the given dimensions.
  DemandDataset(int num_days, int slots_per_day, int num_cells);

  int num_days() const { return num_days_; }
  int slots_per_day() const { return slots_per_day_; }
  int num_cells() const { return num_cells_; }

  double workers(int day, int slot, int cell) const {
    return workers_[Index(day, slot, cell)];
  }
  double tasks(int day, int slot, int cell) const {
    return tasks_[Index(day, slot, cell)];
  }
  double count(DemandSide side, int day, int slot, int cell) const {
    return side == DemandSide::kWorkers ? workers(day, slot, cell)
                                        : tasks(day, slot, cell);
  }
  void set_workers(int day, int slot, int cell, double value) {
    workers_[Index(day, slot, cell)] = value;
  }
  void set_tasks(int day, int slot, int cell, double value) {
    tasks_[Index(day, slot, cell)] = value;
  }

  const WeatherSample& weather(int day, int slot) const {
    return weather_[static_cast<size_t>(day) *
                        static_cast<size_t>(slots_per_day_) +
                    static_cast<size_t>(slot)];
  }
  void set_weather(int day, int slot, WeatherSample sample) {
    weather_[static_cast<size_t>(day) * static_cast<size_t>(slots_per_day_) +
             static_cast<size_t>(slot)] = sample;
  }

  /// 0 = Monday ... 6 = Sunday.
  int day_of_week(int day) const {
    return day_of_week_[static_cast<size_t>(day)];
  }
  void set_day_of_week(int day, int dow) {
    day_of_week_[static_cast<size_t>(day)] = dow;
  }

  /// Mean count of `side` over all (day, slot) for one cell, days
  /// [0, limit_days). Used as a normalization feature by several models.
  double CellMean(DemandSide side, int cell, int limit_days) const;

  /// Checks dimension coherence.
  Status Validate() const;

 private:
  size_t Index(int day, int slot, int cell) const {
    return (static_cast<size_t>(day) * static_cast<size_t>(slots_per_day_) +
            static_cast<size_t>(slot)) *
               static_cast<size_t>(num_cells_) +
           static_cast<size_t>(cell);
  }

  int num_days_ = 0;
  int slots_per_day_ = 0;
  int num_cells_ = 0;
  std::vector<double> workers_;
  std::vector<double> tasks_;
  std::vector<WeatherSample> weather_;
  std::vector<int> day_of_week_;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_DATASET_H_
