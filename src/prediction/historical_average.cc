#include "prediction/historical_average.h"

namespace ftoa {

Status HistoricalAverage::Fit(const DemandDataset& data, int train_days,
                              DemandSide side) {
  if (train_days <= 0 || train_days > data.num_days()) {
    return Status::InvalidArgument("HA: invalid train_days");
  }
  slots_per_day_ = data.slots_per_day();
  num_cells_ = data.num_cells();
  const size_t per_day = static_cast<size_t>(slots_per_day_) * num_cells_;

  dow_mean_.assign(7 * per_day, 0.0);
  dow_seen_.assign(7, false);
  slot_mean_.assign(per_day, 0.0);
  std::vector<int> dow_days(7, 0);

  for (int day = 0; day < train_days; ++day) {
    const int dow = data.day_of_week(day);
    dow_seen_[static_cast<size_t>(dow)] = true;
    ++dow_days[static_cast<size_t>(dow)];
    for (int slot = 0; slot < slots_per_day_; ++slot) {
      for (int cell = 0; cell < num_cells_; ++cell) {
        const double v = data.count(side, day, slot, cell);
        dow_mean_[static_cast<size_t>(dow) * per_day +
                  static_cast<size_t>(slot) * num_cells_ + cell] += v;
        slot_mean_[static_cast<size_t>(slot) * num_cells_ + cell] += v;
      }
    }
  }
  for (int dow = 0; dow < 7; ++dow) {
    if (dow_days[static_cast<size_t>(dow)] == 0) continue;
    const double inv = 1.0 / dow_days[static_cast<size_t>(dow)];
    for (size_t k = 0; k < per_day; ++k) {
      dow_mean_[static_cast<size_t>(dow) * per_day + k] *= inv;
    }
  }
  const double inv_days = 1.0 / train_days;
  for (double& v : slot_mean_) v *= inv_days;
  return Status::OK();
}

std::vector<double> HistoricalAverage::Predict(const DemandDataset& data,
                                               int day, int slot) const {
  std::vector<double> out(static_cast<size_t>(num_cells_), 0.0);
  const int dow = data.day_of_week(day);
  const size_t per_day = static_cast<size_t>(slots_per_day_) * num_cells_;
  const bool have_dow = dow_seen_[static_cast<size_t>(dow)];
  for (int cell = 0; cell < num_cells_; ++cell) {
    const size_t offset = static_cast<size_t>(slot) * num_cells_ + cell;
    out[static_cast<size_t>(cell)] =
        have_dow ? dow_mean_[static_cast<size_t>(dow) * per_day + offset]
                 : slot_mean_[offset];
  }
  return out;
}

}  // namespace ftoa
