#include "prediction/registry.h"

#include "prediction/arima.h"
#include "prediction/gbrt.h"
#include "prediction/historical_average.h"
#include "prediction/hp_msi.h"
#include "prediction/linear_regression.h"
#include "prediction/neural_network.h"
#include "prediction/paq.h"

namespace ftoa {

std::vector<std::string> AllPredictorNames() {
  return {"HA", "ARIMA", "GBRT", "PAQ", "LR", "NN", "HP-MSI"};
}

Result<std::unique_ptr<Predictor>> CreatePredictor(const std::string& name) {
  if (name == "HA") {
    return std::unique_ptr<Predictor>(new HistoricalAverage());
  }
  if (name == "ARIMA") {
    return std::unique_ptr<Predictor>(new ArimaPredictor());
  }
  if (name == "GBRT") {
    return std::unique_ptr<Predictor>(new GbrtPredictor());
  }
  if (name == "PAQ") {
    return std::unique_ptr<Predictor>(new PaqPredictor());
  }
  if (name == "LR") {
    return std::unique_ptr<Predictor>(new LinearRegressionPredictor());
  }
  if (name == "NN") {
    return std::unique_ptr<Predictor>(new NeuralNetworkPredictor());
  }
  if (name == "HP-MSI") {
    return std::unique_ptr<Predictor>(new HpMsiPredictor());
  }
  return Status::NotFound("unknown predictor: " + name);
}

}  // namespace ftoa
