// Name-based construction of the seven Table 5 predictors.

#ifndef FTOA_PREDICTION_REGISTRY_H_
#define FTOA_PREDICTION_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "prediction/predictor.h"
#include "util/result.h"

namespace ftoa {

/// Names of all registered predictors, in Table 5 order:
/// HA, ARIMA, GBRT, PAQ, LR, NN, HP-MSI.
std::vector<std::string> AllPredictorNames();

/// Constructs a predictor by its Table 5 name (case-sensitive).
Result<std::unique_ptr<Predictor>> CreatePredictor(const std::string& name);

}  // namespace ftoa

#endif  // FTOA_PREDICTION_REGISTRY_H_
