// GBRT — Gradient Boosted Regression Trees (Friedman), "one of the most
// effective statistical learning models for prediction" per the paper
// (Section 6.3). Implemented from scratch: squared-loss boosting over
// depth-limited CART regression trees with histogram (quantile-binned)
// split search and deterministic row subsampling.

#ifndef FTOA_PREDICTION_GBRT_H_
#define FTOA_PREDICTION_GBRT_H_

#include <cstdint>
#include <vector>

#include "prediction/features.h"
#include "prediction/predictor.h"
#include "util/rng.h"

namespace ftoa {

/// Boosting hyperparameters.
struct GbrtParams {
  int num_trees = 40;
  int max_depth = 3;
  int min_samples_leaf = 20;
  double shrinkage = 0.1;
  double row_subsample = 0.8;
  int histogram_bins = 32;
  uint64_t seed = 0x5eed;
  /// Cap on assembled training rows (cells are strided when exceeded).
  int max_rows = 200000;
};

/// The cell stride Fit uses to honor GbrtParams::max_rows: ceil-free
/// full_rows / max_rows, at least 1, clamped to num_cells (a stride past
/// the cell range degenerates to one sampled cell per (day, slot), which
/// is the largest meaningful stride). Computed and clamped in 64-bit:
/// full_rows is days*slots*cells and overflows int at city scale, and a
/// negative truncated stride would never terminate the training scan
/// (found by the -Wconversion gate; pinned in predictors_test.cc).
int64_t TrainingCellStride(int64_t full_rows, int max_rows,
                           int64_t num_cells);

/// A fitted regression-tree ensemble over generic feature vectors. Exposed
/// separately from the Predictor wrapper so HP-MSI can reuse it on
/// cluster-level series.
class GbrtModel {
 public:
  explicit GbrtModel(GbrtParams params = {}) : params_(params) {}

  /// Fits on `rows` (row-major, `dim` features each) against `targets`.
  Status Train(const std::vector<double>& rows, int dim,
               const std::vector<double>& targets);

  /// Ensemble prediction for one feature vector of length dim.
  double Predict(const double* features) const;

  bool trained() const { return dim_ > 0; }
  int num_trees() const { return static_cast<int>(tree_roots_.size()); }

 private:
  struct Node {
    int32_t feature = -1;    // -1 for leaves.
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    double value = 0.0;
  };

  int32_t BuildTree(const std::vector<double>& rows,
                    const std::vector<double>& residuals,
                    std::vector<int32_t>& indices, int begin, int end,
                    int depth);

  GbrtParams params_;
  int dim_ = 0;
  double base_prediction_ = 0.0;
  std::vector<Node> nodes_;
  std::vector<int32_t> tree_roots_;
  std::vector<std::vector<double>> bin_edges_;  // Per feature.
};

/// The GBRT entry of Table 5: GbrtModel over DemandFeatures, trained on
/// log1p(count) targets (squared loss in log space = the rmsle the
/// evaluation scores; multiplicative demand modifiers such as rain lift
/// and weekend damping become additive offsets the trees capture cleanly).
/// Predictions are mapped back with expm1 and clamped at zero.
class GbrtPredictor : public Predictor {
 public:
  explicit GbrtPredictor(GbrtParams params = {}) : model_(params) {}

  std::string name() const override { return "GBRT"; }

  Status Fit(const DemandDataset& data, int train_days,
             DemandSide side) override;

  std::vector<double> Predict(const DemandDataset& data, int day,
                              int slot) const override;

 private:
  DemandFeatures features_;
  GbrtModel model_;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_GBRT_H_
