// LR — linear regression "with the numbers of tasks and workers of the 15
// most recent corresponding periods" (paper Section 6.3): for each target
// (day, slot, cell) the features are the counts at the same slot and cell on
// the 15 preceding days, for both market sides. Coefficients are pooled
// across cells and fitted with ridge-regularized least squares.

#ifndef FTOA_PREDICTION_LINEAR_REGRESSION_H_
#define FTOA_PREDICTION_LINEAR_REGRESSION_H_

#include <vector>

#include "prediction/predictor.h"

namespace ftoa {

/// The LR baseline predictor.
class LinearRegressionPredictor : public Predictor {
 public:
  /// `lags`: how many preceding corresponding periods feed the model.
  explicit LinearRegressionPredictor(int lags = 15) : lags_(lags) {}

  std::string name() const override { return "LR"; }

  Status Fit(const DemandDataset& data, int train_days,
             DemandSide side) override;

  std::vector<double> Predict(const DemandDataset& data, int day,
                              int slot) const override;

 private:
  /// Feature vector for one (day, slot, cell): bias + 2 * lags_ counts.
  std::vector<double> Features(const DemandDataset& data, int day, int slot,
                               int cell) const;

  int lags_;
  DemandSide side_ = DemandSide::kTasks;
  std::vector<double> coefficients_;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_LINEAR_REGRESSION_H_
