// ARIMA — the "well-known time-series model" baseline (paper Section 6.3,
// citing Moreira-Matias et al.). Each cell gets its own ARIMA(1,1,1) fitted
// on the chronological (day x slot) count series by the Hannan-Rissanen
// two-stage procedure: a long autoregression estimates the innovations,
// then the AR and MA coefficients are obtained by least squares against the
// lagged innovations. Prediction is one-step-ahead with innovations
// reconstructed over a trailing window of actual history.

#ifndef FTOA_PREDICTION_ARIMA_H_
#define FTOA_PREDICTION_ARIMA_H_

#include <vector>

#include "prediction/predictor.h"

namespace ftoa {

/// Per-cell ARIMA(1,1,1) predictor.
class ArimaPredictor : public Predictor {
 public:
  std::string name() const override { return "ARIMA"; }

  Status Fit(const DemandDataset& data, int train_days,
             DemandSide side) override;

  std::vector<double> Predict(const DemandDataset& data, int day,
                              int slot) const override;

 private:
  struct CellModel {
    bool valid = false;  // Falls back to last observation when false.
    double intercept = 0.0;
    double ar = 0.0;  // phi.
    double ma = 0.0;  // theta.
  };

  /// Count at chronological step `t` (= day * slots_per_day + slot).
  double SeriesAt(const DemandDataset& data, int cell, int t) const;

  DemandSide side_ = DemandSide::kTasks;
  int slots_per_day_ = 0;
  std::vector<CellModel> models_;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_ARIMA_H_
