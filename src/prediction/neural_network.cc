#include "prediction/neural_network.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace ftoa {

Status NeuralNetworkPredictor::Fit(const DemandDataset& data, int train_days,
                                   DemandSide side) {
  features_.Prepare(data, train_days, side);
  const int first_day = features_.MinTrainableDay();
  if (train_days <= first_day) {
    return Status::InvalidArgument("NN: too few training days");
  }
  dim_ = features_.dim();

  // Assemble (strided) training rows.
  const int64_t full_rows = static_cast<int64_t>(train_days - first_day) *
                            data.slots_per_day() * data.num_cells();
  const int cell_stride = static_cast<int>(
      std::max<int64_t>(1, full_rows / std::max(1, params_.max_rows)));
  std::vector<double> rows;
  std::vector<double> targets;
  std::vector<double> scratch(static_cast<size_t>(dim_));
  for (int day = first_day; day < train_days; ++day) {
    for (int slot = 0; slot < data.slots_per_day(); ++slot) {
      for (int cell = 0; cell < data.num_cells(); cell += cell_stride) {
        features_.Extract(data, day, slot, cell, scratch.data());
        rows.insert(rows.end(), scratch.begin(), scratch.end());
        targets.push_back(data.count(side, day, slot, cell));
      }
    }
  }
  const size_t n = targets.size();
  if (n < 32) return Status::InvalidArgument("NN: too few training rows");

  // Standardize features and target.
  feature_mean_.assign(static_cast<size_t>(dim_), 0.0);
  feature_std_.assign(static_cast<size_t>(dim_), 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (int f = 0; f < dim_; ++f) {
      feature_mean_[static_cast<size_t>(f)] +=
          rows[i * static_cast<size_t>(dim_) + static_cast<size_t>(f)];
    }
  }
  for (double& m : feature_mean_) m /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    for (int f = 0; f < dim_; ++f) {
      const double d =
          rows[i * static_cast<size_t>(dim_) + static_cast<size_t>(f)] -
          feature_mean_[static_cast<size_t>(f)];
      feature_std_[static_cast<size_t>(f)] += d * d;
    }
  }
  for (double& s : feature_std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-9) s = 1.0;
  }
  target_mean_ = 0.0;
  for (double t : targets) target_mean_ += t;
  target_mean_ /= static_cast<double>(n);
  target_std_ = 0.0;
  for (double t : targets) {
    target_std_ += (t - target_mean_) * (t - target_mean_);
  }
  target_std_ = std::sqrt(target_std_ / static_cast<double>(n));
  if (target_std_ < 1e-9) target_std_ = 1.0;

  // Initialize parameters (Xavier-ish).
  Rng rng(params_.seed);
  const int hidden = params_.hidden_units;
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  w1_.assign(static_cast<size_t>(hidden) * dim_, 0.0);
  for (double& w : w1_) w = rng.NextGaussian(0.0, scale);
  b1_.assign(static_cast<size_t>(hidden), 0.0);
  w2_.assign(static_cast<size_t>(hidden), 0.0);
  for (double& w : w2_) {
    w = rng.NextGaussian(0.0, 1.0 / std::sqrt(static_cast<double>(hidden)));
  }
  b2_ = 0.0;

  // SGD with per-epoch deterministic shuffling.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> x(static_cast<size_t>(dim_));
  std::vector<double> hidden_act(static_cast<size_t>(hidden));
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    const double lr = params_.learning_rate / (1.0 + 0.3 * epoch);
    // Fisher-Yates with the module Rng.
    for (size_t i = n - 1; i > 0; --i) {
      const size_t j = rng.NextBounded(i + 1);
      std::swap(order[i], order[j]);
    }
    for (size_t idx : order) {
      for (int f = 0; f < dim_; ++f) {
        x[static_cast<size_t>(f)] =
            (rows[idx * static_cast<size_t>(dim_) + static_cast<size_t>(f)] -
             feature_mean_[static_cast<size_t>(f)]) /
            feature_std_[static_cast<size_t>(f)];
      }
      const double y =
          (targets[idx] - target_mean_) / target_std_;
      // Forward.
      double output = b2_;
      for (int h = 0; h < hidden; ++h) {
        double z = b1_[static_cast<size_t>(h)];
        const double* wrow = &w1_[static_cast<size_t>(h) * dim_];
        for (int f = 0; f < dim_; ++f) z += wrow[f] * x[static_cast<size_t>(f)];
        const double a = std::tanh(z);
        hidden_act[static_cast<size_t>(h)] = a;
        output += w2_[static_cast<size_t>(h)] * a;
      }
      // Backward (squared loss).
      const double delta = output - y;
      b2_ -= lr * delta;
      for (int h = 0; h < hidden; ++h) {
        const double a = hidden_act[static_cast<size_t>(h)];
        const double grad_w2 = delta * a + params_.l2 * w2_[static_cast<size_t>(h)];
        const double delta_hidden =
            delta * w2_[static_cast<size_t>(h)] * (1.0 - a * a);
        w2_[static_cast<size_t>(h)] -= lr * grad_w2;
        b1_[static_cast<size_t>(h)] -= lr * delta_hidden;
        double* wrow = &w1_[static_cast<size_t>(h) * dim_];
        for (int f = 0; f < dim_; ++f) {
          wrow[f] -= lr * (delta_hidden * x[static_cast<size_t>(f)] +
                           params_.l2 * wrow[f]);
        }
      }
    }
  }
  return Status::OK();
}

double NeuralNetworkPredictor::Forward(const double* features) const {
  const int hidden = params_.hidden_units;
  double output = b2_;
  for (int h = 0; h < hidden; ++h) {
    double z = b1_[static_cast<size_t>(h)];
    const double* wrow = &w1_[static_cast<size_t>(h) * dim_];
    for (int f = 0; f < dim_; ++f) {
      const double x = (features[f] - feature_mean_[static_cast<size_t>(f)]) /
                       feature_std_[static_cast<size_t>(f)];
      z += wrow[f] * x;
    }
    output += w2_[static_cast<size_t>(h)] * std::tanh(z);
  }
  return output * target_std_ + target_mean_;
}

std::vector<double> NeuralNetworkPredictor::Predict(const DemandDataset& data,
                                                    int day, int slot) const {
  std::vector<double> out(static_cast<size_t>(data.num_cells()), 0.0);
  std::vector<double> scratch(static_cast<size_t>(dim_));
  for (int cell = 0; cell < data.num_cells(); ++cell) {
    features_.Extract(data, day, slot, cell, scratch.data());
    out[static_cast<size_t>(cell)] = std::max(0.0, Forward(scratch.data()));
  }
  return out;
}

}  // namespace ftoa
