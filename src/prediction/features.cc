#include "prediction/features.h"

#include <cmath>

namespace ftoa {

void DemandFeatures::Prepare(const DemandDataset& data, int train_days,
                             DemandSide side) {
  side_ = side;
  cell_mean_.assign(static_cast<size_t>(data.num_cells()), 0.0);
  for (int cell = 0; cell < data.num_cells(); ++cell) {
    cell_mean_[static_cast<size_t>(cell)] =
        data.CellMean(side, cell, train_days);
  }
}

void DemandFeatures::Extract(const DemandDataset& data, int day, int slot,
                             int cell, double* out) const {
  int k = 0;
  // Same-slot counts on the preceding kDayLags days.
  for (int lag = 1; lag <= kDayLags; ++lag) {
    const int past = day - lag;
    out[k++] = past >= 0 ? data.count(side_, past, slot, cell) : 0.0;
  }
  // Most recent same-day slots (chronologically before the target).
  const int prev1_day = slot >= 1 ? day : day - 1;
  const int prev1_slot =
      slot >= 1 ? slot - 1 : data.slots_per_day() - 1;
  out[k++] = prev1_day >= 0 ? data.count(side_, prev1_day, prev1_slot, cell)
                            : 0.0;
  const int prev2_day = slot >= 2 ? day : day - 1;
  const int prev2_slot = slot >= 2
                             ? slot - 2
                             : data.slots_per_day() - (2 - slot);
  out[k++] = prev2_day >= 0 ? data.count(side_, prev2_day, prev2_slot, cell)
                            : 0.0;
  // Opposite market side, same slot yesterday (supply/demand coupling).
  const DemandSide other = side_ == DemandSide::kWorkers
                               ? DemandSide::kTasks
                               : DemandSide::kWorkers;
  out[k++] = day >= 1 ? data.count(other, day - 1, slot, cell) : 0.0;
  // Cell base demand.
  out[k++] = cell_mean_[static_cast<size_t>(cell)];
  // Cyclic slot-of-day encoding.
  const double phase =
      2.0 * M_PI * slot / static_cast<double>(data.slots_per_day());
  out[k++] = std::sin(phase);
  out[k++] = std::cos(phase);
  // Calendar.
  const int dow = data.day_of_week(day);
  out[k++] = static_cast<double>(dow);
  out[k++] = dow >= 5 ? 1.0 : 0.0;  // Weekend flag.
  // Weather (a deployed platform has a forecast for the target slot).
  const WeatherSample& weather = data.weather(day, slot);
  out[k++] = weather.temperature;
  out[k++] = weather.precipitation;
  // Day-lagged precipitation, aligned with the day-lagged counts above: a
  // rain day inflates that day's counts, so a model seeing only the lagged
  // count would over-predict the day after rain. Pairing each lagged count
  // with its day's precipitation lets the trees discount rain-inflated
  // history on dry target days.
  for (int lag = 1; lag <= kDayLags; ++lag) {
    const int past = day - lag;
    out[k++] = past >= 0 ? data.weather(past, slot).precipitation : 0.0;
  }
}

}  // namespace ftoa
