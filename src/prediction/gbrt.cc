#include "prediction/gbrt.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ftoa {

int64_t TrainingCellStride(int64_t full_rows, int max_rows,
                           int64_t num_cells) {
  const int64_t stride =
      std::max<int64_t>(1, full_rows / std::max(1, max_rows));
  return std::min(stride, std::max<int64_t>(1, num_cells));
}

namespace {

/// Quantile bin edges (ascending, deduplicated) for one feature column.
std::vector<double> ComputeBinEdges(const std::vector<double>& rows, int dim,
                                    int feature, size_t num_rows, int bins) {
  std::vector<double> values(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    values[i] = rows[i * static_cast<size_t>(dim) +
                     static_cast<size_t>(feature)];
  }
  std::sort(values.begin(), values.end());
  std::vector<double> edges;
  edges.reserve(static_cast<size_t>(bins));
  for (int b = 1; b < bins; ++b) {
    const size_t idx = values.size() * static_cast<size_t>(b) /
                       static_cast<size_t>(bins);
    const double edge = values[std::min(idx, values.size() - 1)];
    if (edges.empty() || edge > edges.back()) edges.push_back(edge);
  }
  return edges;
}

}  // namespace

Status GbrtModel::Train(const std::vector<double>& rows, int dim,
                        const std::vector<double>& targets) {
  if (dim <= 0) return Status::InvalidArgument("GBRT: non-positive dim");
  const size_t num_rows = targets.size();
  if (rows.size() != num_rows * static_cast<size_t>(dim)) {
    return Status::InvalidArgument("GBRT: rows/targets size mismatch");
  }
  if (num_rows < static_cast<size_t>(params_.min_samples_leaf) * 2) {
    return Status::InvalidArgument("GBRT: too few training rows");
  }
  dim_ = dim;
  nodes_.clear();
  tree_roots_.clear();

  bin_edges_.assign(static_cast<size_t>(dim), {});
  for (int f = 0; f < dim; ++f) {
    bin_edges_[static_cast<size_t>(f)] =
        ComputeBinEdges(rows, dim, f, num_rows, params_.histogram_bins);
  }

  base_prediction_ = 0.0;
  for (double t : targets) base_prediction_ += t;
  base_prediction_ /= static_cast<double>(num_rows);

  std::vector<double> predictions(num_rows, base_prediction_);
  std::vector<double> residuals(num_rows, 0.0);
  Rng rng(params_.seed);

  for (int tree = 0; tree < params_.num_trees; ++tree) {
    for (size_t i = 0; i < num_rows; ++i) {
      residuals[i] = targets[i] - predictions[i];
    }
    // Deterministic row subsample.
    std::vector<int32_t> indices;
    indices.reserve(num_rows);
    for (size_t i = 0; i < num_rows; ++i) {
      if (params_.row_subsample >= 1.0 ||
          rng.NextBool(params_.row_subsample)) {
        indices.push_back(static_cast<int32_t>(i));
      }
    }
    if (indices.size() < static_cast<size_t>(params_.min_samples_leaf) * 2) {
      continue;
    }
    const int32_t root = BuildTree(rows, residuals, indices, 0,
                                   static_cast<int>(indices.size()), 0);
    tree_roots_.push_back(root);
    // Update every row's prediction with the shrunken tree output.
    for (size_t i = 0; i < num_rows; ++i) {
      int32_t node = root;
      const double* f = &rows[i * static_cast<size_t>(dim)];
      while (nodes_[static_cast<size_t>(node)].feature >= 0) {
        const Node& n = nodes_[static_cast<size_t>(node)];
        node = f[n.feature] <= n.threshold ? n.left : n.right;
      }
      predictions[i] +=
          params_.shrinkage * nodes_[static_cast<size_t>(node)].value;
    }
  }
  return Status::OK();
}

int32_t GbrtModel::BuildTree(const std::vector<double>& rows,
                             const std::vector<double>& residuals,
                             std::vector<int32_t>& indices, int begin,
                             int end, int depth) {
  const int count = end - begin;
  double sum = 0.0;
  for (int i = begin; i < end; ++i) {
    sum += residuals[static_cast<size_t>(indices[static_cast<size_t>(i)])];
  }
  const double mean = sum / count;

  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_id)].value = mean;

  if (depth >= params_.max_depth ||
      count < params_.min_samples_leaf * 2) {
    return node_id;
  }

  // Histogram split search: for each feature, accumulate per-bin sums and
  // counts, then scan split points left to right.
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;
  const double total_sq = sum * sum / count;

  std::vector<double> bin_sum;
  std::vector<int> bin_count;
  for (int f = 0; f < dim_; ++f) {
    const auto& edges = bin_edges_[static_cast<size_t>(f)];
    if (edges.empty()) continue;
    bin_sum.assign(edges.size() + 1, 0.0);
    bin_count.assign(edges.size() + 1, 0);
    for (int i = begin; i < end; ++i) {
      const int32_t row = indices[static_cast<size_t>(i)];
      const double v = rows[static_cast<size_t>(row) *
                                static_cast<size_t>(dim_) +
                            static_cast<size_t>(f)];
      const size_t bin = static_cast<size_t>(
          std::upper_bound(edges.begin(), edges.end(), v) - edges.begin());
      bin_sum[bin] += residuals[static_cast<size_t>(row)];
      ++bin_count[bin];
    }
    double left_sum = 0.0;
    int left_count = 0;
    for (size_t b = 0; b < edges.size(); ++b) {
      left_sum += bin_sum[b];
      left_count += bin_count[b];
      const int right_count = count - left_count;
      if (left_count < params_.min_samples_leaf ||
          right_count < params_.min_samples_leaf) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double gain = left_sum * left_sum / left_count +
                          right_sum * right_sum / right_count - total_sq;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = edges[b];
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition indices in place around the chosen split.
  const auto middle = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](int32_t row) {
        return rows[static_cast<size_t>(row) * static_cast<size_t>(dim_) +
                    static_cast<size_t>(best_feature)] <= best_threshold;
      });
  const int split = static_cast<int>(middle - indices.begin());
  if (split == begin || split == end) return node_id;  // Numerical guard.

  nodes_[static_cast<size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<size_t>(node_id)].threshold = best_threshold;
  const int32_t left = BuildTree(rows, residuals, indices, begin, split,
                                 depth + 1);
  const int32_t right =
      BuildTree(rows, residuals, indices, split, end, depth + 1);
  nodes_[static_cast<size_t>(node_id)].left = left;
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

double GbrtModel::Predict(const double* features) const {
  double prediction = base_prediction_;
  for (int32_t root : tree_roots_) {
    int32_t node = root;
    while (nodes_[static_cast<size_t>(node)].feature >= 0) {
      const Node& n = nodes_[static_cast<size_t>(node)];
      node = features[n.feature] <= n.threshold ? n.left : n.right;
    }
    prediction += params_.shrinkage * nodes_[static_cast<size_t>(node)].value;
  }
  return prediction;
}

Status GbrtPredictor::Fit(const DemandDataset& data, int train_days,
                          DemandSide side) {
  features_.Prepare(data, train_days, side);
  const int first_day = features_.MinTrainableDay();
  if (train_days <= first_day) {
    return Status::InvalidArgument("GBRT: too few training days");
  }
  const int dim = features_.dim();
  const int64_t full_rows = static_cast<int64_t>(train_days - first_day) *
                            data.slots_per_day() * data.num_cells();
  const int64_t cell_stride = TrainingCellStride(
      full_rows, GbrtParams{}.max_rows, data.num_cells());

  std::vector<double> rows;
  std::vector<double> targets;
  std::vector<double> scratch(static_cast<size_t>(dim));
  for (int day = first_day; day < train_days; ++day) {
    for (int slot = 0; slot < data.slots_per_day(); ++slot) {
      for (int cell = 0; cell < data.num_cells();
           cell += static_cast<int>(cell_stride)) {
        features_.Extract(data, day, slot, cell, scratch.data());
        rows.insert(rows.end(), scratch.begin(), scratch.end());
        // Train in log space: squared loss on log1p(count) is the rmsle
        // the evaluation scores, and the multiplicative demand modifiers
        // (rain lift, weekend damping) become additive offsets that
        // depth-limited trees — and the day-lagged weather covariates —
        // can capture as constant corrections.
        targets.push_back(std::log1p(data.count(side, day, slot, cell)));
      }
    }
  }
  return model_.Train(rows, dim, targets);
}

std::vector<double> GbrtPredictor::Predict(const DemandDataset& data,
                                           int day, int slot) const {
  std::vector<double> out(static_cast<size_t>(data.num_cells()), 0.0);
  std::vector<double> scratch(static_cast<size_t>(features_.dim()));
  for (int cell = 0; cell < data.num_cells(); ++cell) {
    features_.Extract(data, day, slot, cell, scratch.data());
    out[static_cast<size_t>(cell)] =
        std::max(0.0, std::expm1(model_.Predict(scratch.data())));
  }
  return out;
}

}  // namespace ftoa
