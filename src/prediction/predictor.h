// The common interface of the seven offline prediction approaches compared
// in the paper's Table 5. A predictor is fitted on a training prefix of the
// demand history and then asked for per-cell counts of one (day, slot); at
// prediction time it may read *actual* history strictly before the target
// day (rolling evaluation, as a deployed system would).

#ifndef FTOA_PREDICTION_PREDICTOR_H_
#define FTOA_PREDICTION_PREDICTOR_H_

#include <string>
#include <vector>

#include "prediction/dataset.h"
#include "util/status.h"

namespace ftoa {

/// Base class of all spatiotemporal demand predictors.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Display name as it appears in Table 5 ("HA", "ARIMA", ...).
  virtual std::string name() const = 0;

  /// Fits on days [0, train_days) of `data` for the given market side.
  virtual Status Fit(const DemandDataset& data, int train_days,
                     DemandSide side) = 0;

  /// Predicted counts per cell for (day, slot); `day` must be
  /// >= train_days passed to Fit. Implementations may consult `data` for
  /// actual history chronologically *before* (day, slot) — a deployed
  /// system predicts the next slot knowing everything up to the current
  /// one — but never at or after the target slot.
  virtual std::vector<double> Predict(const DemandDataset& data, int day,
                                      int slot) const = 0;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_PREDICTOR_H_
