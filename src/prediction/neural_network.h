// NN — "a neural network with the numbers of tasks and workers of the 15
// most recent corresponding periods and other features e.g., the weather
// condition" (paper Section 6.3). A from-scratch single-hidden-layer MLP
// (tanh) trained with SGD on standardized DemandFeatures.

#ifndef FTOA_PREDICTION_NEURAL_NETWORK_H_
#define FTOA_PREDICTION_NEURAL_NETWORK_H_

#include <cstdint>
#include <vector>

#include "prediction/features.h"
#include "prediction/predictor.h"

namespace ftoa {

/// MLP hyperparameters.
struct NeuralNetworkParams {
  int hidden_units = 24;
  int epochs = 15;
  double learning_rate = 0.02;
  double l2 = 1e-5;
  uint64_t seed = 0xbeef;
  /// Cap on assembled training rows (cells are strided when exceeded).
  int max_rows = 150000;
};

/// The NN entry of Table 5.
class NeuralNetworkPredictor : public Predictor {
 public:
  explicit NeuralNetworkPredictor(NeuralNetworkParams params = {})
      : params_(params) {}

  std::string name() const override { return "NN"; }

  Status Fit(const DemandDataset& data, int train_days,
             DemandSide side) override;

  std::vector<double> Predict(const DemandDataset& data, int day,
                              int slot) const override;

 private:
  double Forward(const double* features) const;

  NeuralNetworkParams params_;
  DemandFeatures features_;
  int dim_ = 0;
  // Standardization.
  std::vector<double> feature_mean_;
  std::vector<double> feature_std_;
  double target_mean_ = 0.0;
  double target_std_ = 1.0;
  // Parameters: hidden weights [hidden][dim], hidden bias, output weights,
  // output bias.
  std::vector<double> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  double b2_ = 0.0;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_NEURAL_NETWORK_H_
