#include "prediction/paq.h"

#include <algorithm>
#include <cmath>

namespace ftoa {

Status PaqPredictor::Fit(const DemandDataset& data, int train_days,
                         DemandSide side) {
  if (train_days <= 0) {
    return Status::InvalidArgument("PAQ: invalid train_days");
  }
  side_ = side;
  // Slots per hour assuming the day covers 24 hours.
  const double slots_per_hour = data.slots_per_day() / 24.0;
  window_slots_ = std::max(
      1, static_cast<int>(std::lround(params_.window_hours * slots_per_hour)));
  return Status::OK();
}

std::vector<double> PaqPredictor::Predict(const DemandDataset& data, int day,
                                          int slot) const {
  std::vector<double> out(static_cast<size_t>(data.num_cells()), 0.0);
  const int slots_per_day = data.slots_per_day();
  const int target_step = day * slots_per_day + slot;

  // Chronological lag accessor across day boundaries.
  auto lag_count = [&](int cell, int lag) -> double {
    const int t = target_step - lag;
    if (t < 0) return 0.0;
    return data.count(side_, t / slots_per_day, t % slots_per_day, cell);
  };

  for (int cell = 0; cell < data.num_cells(); ++cell) {
    double weighted_sum = 0.0;
    double weight_total = 0.0;
    double weight = 1.0;
    for (int lag = 1; lag <= window_slots_; ++lag) {
      weighted_sum += weight * lag_count(cell, lag);
      weight_total += weight;
      weight *= params_.decay;
    }
    const double base = weight_total > 0.0 ? weighted_sum / weight_total : 0.0;
    const double trend = lag_count(cell, 1) - lag_count(cell, 2);
    out[static_cast<size_t>(cell)] =
        std::max(0.0, base + params_.trend_weight * trend);
  }
  return out;
}

}  // namespace ftoa
