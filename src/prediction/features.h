// Shared feature extraction for the learned predictors (GBRT, NN, HP-MSI):
// day-lagged counts of both market sides, recent same-day slots, cell-level
// base demand, cyclic slot encoding, day-of-week, and weather covariates.

#ifndef FTOA_PREDICTION_FEATURES_H_
#define FTOA_PREDICTION_FEATURES_H_

#include <vector>

#include "prediction/dataset.h"

namespace ftoa {

/// Extracts a fixed-width feature vector per (day, slot, cell) target.
class DemandFeatures {
 public:
  /// Number of day-lags of the target series included as features.
  static constexpr int kDayLags = 7;

  DemandFeatures() = default;

  /// Precomputes per-cell base demand over days [0, train_days).
  void Prepare(const DemandDataset& data, int train_days, DemandSide side);

  /// Width of the feature vector: kDayLags day-lagged counts, the ten
  /// covariates Extract appends (two recent slots, opposite side, cell
  /// mean, sin/cos slot phase, day-of-week, weekend flag, temperature,
  /// precipitation), and kDayLags day-lagged precipitation values that let
  /// the learners discount rain-inflated lagged counts on dry target days.
  /// Extract writes exactly this many doubles; keep the two in lockstep
  /// (an old +9 undercounted by one and made every caller's feature buffer
  /// overflow on the precipitation write).
  int dim() const { return 2 * kDayLags + 10; }

  /// Writes dim() features for the target into `out`.
  void Extract(const DemandDataset& data, int day, int slot, int cell,
               double* out) const;

  /// First day with a full lag window (training should start here).
  int MinTrainableDay() const { return kDayLags; }

 private:
  DemandSide side_ = DemandSide::kTasks;
  std::vector<double> cell_mean_;
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_FEATURES_H_
