// HA — Historical Average: "the average of the history in the same time
// slot and the same grid area in the same day of week" (paper Section 6.3).

#ifndef FTOA_PREDICTION_HISTORICAL_AVERAGE_H_
#define FTOA_PREDICTION_HISTORICAL_AVERAGE_H_

#include <vector>

#include "prediction/predictor.h"

namespace ftoa {

/// The HA baseline predictor.
class HistoricalAverage : public Predictor {
 public:
  std::string name() const override { return "HA"; }

  Status Fit(const DemandDataset& data, int train_days,
             DemandSide side) override;

  std::vector<double> Predict(const DemandDataset& data, int day,
                              int slot) const override;

 private:
  int slots_per_day_ = 0;
  int num_cells_ = 0;
  // Mean per (day-of-week, slot, cell); falls back to the all-days slot
  // mean when a day-of-week was never observed in training.
  std::vector<double> dow_mean_;      // [dow][slot][cell]
  std::vector<bool> dow_seen_;        // [dow]
  std::vector<double> slot_mean_;     // [slot][cell]
};

}  // namespace ftoa

#endif  // FTOA_PREDICTION_HISTORICAL_AVERAGE_H_
