#include "prediction/dataset.h"

namespace ftoa {

DemandDataset::DemandDataset(int num_days, int slots_per_day, int num_cells)
    : num_days_(num_days),
      slots_per_day_(slots_per_day),
      num_cells_(num_cells),
      workers_(static_cast<size_t>(num_days) * slots_per_day * num_cells,
               0.0),
      tasks_(workers_.size(), 0.0),
      weather_(static_cast<size_t>(num_days) * slots_per_day),
      day_of_week_(static_cast<size_t>(num_days), 0) {
  for (int day = 0; day < num_days; ++day) {
    day_of_week_[static_cast<size_t>(day)] = day % 7;
  }
}

double DemandDataset::CellMean(DemandSide side, int cell,
                               int limit_days) const {
  if (limit_days <= 0) return 0.0;
  double sum = 0.0;
  for (int day = 0; day < limit_days; ++day) {
    for (int slot = 0; slot < slots_per_day_; ++slot) {
      sum += count(side, day, slot, cell);
    }
  }
  return sum / (static_cast<double>(limit_days) * slots_per_day_);
}

Status DemandDataset::Validate() const {
  if (num_days_ < 0 || slots_per_day_ <= 0 || num_cells_ <= 0) {
    return Status::InvalidArgument("DemandDataset: non-positive dimensions");
  }
  const size_t expected = static_cast<size_t>(num_days_) *
                          static_cast<size_t>(slots_per_day_) *
                          static_cast<size_t>(num_cells_);
  if (workers_.size() != expected || tasks_.size() != expected) {
    return Status::Internal("DemandDataset: storage size mismatch");
  }
  for (double v : workers_) {
    if (v < 0.0) return Status::InvalidArgument("DemandDataset: negative count");
  }
  for (double v : tasks_) {
    if (v < 0.0) return Status::InvalidArgument("DemandDataset: negative count");
  }
  return Status::OK();
}

}  // namespace ftoa
