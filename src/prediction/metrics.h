// The paper's two prediction-quality metrics (Section 6.3):
//   ER    = (1/t) * sum_i [ sum_j |a_ij - ã_ij| / sum_j a_ij ]
//   RMLSE = (1/t) * sum_i sqrt( (1/g) * sum_j (log(a_ij+1) - log(ã_ij+1))^2 )
// where i ranges over predicted (day, slot) pairs and j over grid cells.

#ifndef FTOA_PREDICTION_METRICS_H_
#define FTOA_PREDICTION_METRICS_H_

#include <vector>

#include "prediction/predictor.h"
#include "util/result.h"

namespace ftoa {

/// Aggregated prediction errors.
struct PredictionScore {
  double error_rate = 0.0;  ///< ER.
  double rmsle = 0.0;       ///< RMLSE.
  int evaluated_slots = 0;  ///< Number of (day, slot) pairs scored.
};

/// Accumulates one (day, slot)'s actual-vs-predicted cell vectors.
class PredictionScorer {
 public:
  /// Adds one slot's vectors (must have equal sizes).
  void AddSlot(const std::vector<double>& actual,
               const std::vector<double>& predicted);

  /// The accumulated score.
  PredictionScore Score() const;

 private:
  double er_sum_ = 0.0;
  double rmsle_sum_ = 0.0;
  int slots_ = 0;
};

/// Rolling evaluation: fits `predictor` on days [0, train_days) and scores
/// it on every slot of days [train_days, data.num_days()).
Result<PredictionScore> EvaluatePredictor(Predictor* predictor,
                                          const DemandDataset& data,
                                          int train_days, DemandSide side);

}  // namespace ftoa

#endif  // FTOA_PREDICTION_METRICS_H_
