#include "flow/hopcroft_karp.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace ftoa {

namespace {
constexpr int32_t kInf = std::numeric_limits<int32_t>::max();
// The CSR offsets (adj_start_, and iter_'s write cursors) are int32, so the
// edge count must stay below int32 range — at city scale a node-level
// network can genuinely approach this, and a silent wrap here is the PR 7
// stride-truncation bug class. Checked unconditionally in AddEdge.
constexpr size_t kMaxEdges =
    static_cast<size_t>(std::numeric_limits<int32_t>::max());
}  // namespace

HopcroftKarp::HopcroftKarp(int32_t num_left, int32_t num_right) {
  Reset(num_left, num_right);
}

void HopcroftKarp::Reset(int32_t num_left, int32_t num_right) {
  if (num_left < 0 || num_right < 0) {
    std::fprintf(stderr,
                 "HopcroftKarp: negative side size (%d, %d) — a wider count "
                 "narrowed into int32?\n",
                 num_left, num_right);
    std::abort();
  }
  num_left_ = num_left;
  num_right_ = num_right;
  edge_from_.clear();
  edge_to_.clear();
  adjacency_built_ = false;
  match_left_.assign(static_cast<size_t>(num_left), -1);
  match_right_.assign(static_cast<size_t>(num_right), -1);
  dist_.assign(static_cast<size_t>(num_left), 0);
  iter_.assign(static_cast<size_t>(num_left), 0);
}

void HopcroftKarp::AddEdge(int32_t u, int32_t v) {
  // Unconditional bounds checks: matcher callers size their graphs from
  // int64 counts (MinCostFlowGraph and the node-level guide networks are
  // int64 throughout), so an id or edge count that narrowed on the way in
  // must die here, not index out of bounds or wrap a CSR offset later.
  if (u < 0 || u >= num_left_ || v < 0 || v >= num_right_) {
    std::fprintf(stderr,
                 "HopcroftKarp: edge (%d, %d) out of range [0, %d) x [0, %d)\n",
                 u, v, num_left_, num_right_);
    std::abort();
  }
  if (edge_to_.size() >= kMaxEdges) {
    std::fprintf(stderr,
                 "HopcroftKarp: edge count would exceed int32 range (%zu)\n",
                 edge_to_.size());
    std::abort();
  }
  edge_from_.push_back(u);
  edge_to_.push_back(v);
  adjacency_built_ = false;
}

void HopcroftKarp::ReserveEdges(size_t num_edges) {
  edge_from_.reserve(num_edges);
  edge_to_.reserve(num_edges);
}

void HopcroftKarp::SetMatch(int32_t u, int32_t v) {
  if (u < 0 || u >= num_left_ || v < 0 || v >= num_right_) {
    std::fprintf(stderr,
                 "HopcroftKarp: match (%d, %d) out of range [0, %d) x [0, %d)\n",
                 u, v, num_left_, num_right_);
    std::abort();
  }
  assert(match_left_[static_cast<size_t>(u)] < 0);
  assert(match_right_[static_cast<size_t>(v)] < 0);
  match_left_[static_cast<size_t>(u)] = v;
  match_right_[static_cast<size_t>(v)] = u;
}

bool HopcroftKarp::Bfs() {
  queue_.clear();
  for (int32_t u = 0; u < num_left_; ++u) {
    if (match_left_[static_cast<size_t>(u)] < 0) {
      dist_[static_cast<size_t>(u)] = 0;
      queue_.push_back(u);
    } else {
      dist_[static_cast<size_t>(u)] = kInf;
    }
  }
  bool found_augmenting_layer = false;
  for (size_t qi = 0; qi < queue_.size(); ++qi) {
    const int32_t u = queue_[qi];
    const int32_t begin = adj_start_[static_cast<size_t>(u)];
    const int32_t end = adj_start_[static_cast<size_t>(u) + 1];
    for (int32_t k = begin; k < end; ++k) {
      const int32_t v = adj_[static_cast<size_t>(k)];
      const int32_t w = match_right_[static_cast<size_t>(v)];
      if (w < 0) {
        found_augmenting_layer = true;
      } else if (dist_[static_cast<size_t>(w)] == kInf) {
        dist_[static_cast<size_t>(w)] = dist_[static_cast<size_t>(u)] + 1;
        queue_.push_back(w);
      }
    }
  }
  return found_augmenting_layer;
}

bool HopcroftKarp::Dfs(int32_t root) {
  // Iterative DFS with per-node edge cursors (iter_).
  stack_.clear();
  stack_.push_back(root);
  while (!stack_.empty()) {
    const int32_t u = stack_.back();
    int32_t& k = iter_[static_cast<size_t>(u)];
    const int32_t end = adj_start_[static_cast<size_t>(u) + 1];
    bool advanced = false;
    while (k < end) {
      const int32_t v = adj_[static_cast<size_t>(k)];
      ++k;
      const int32_t w = match_right_[static_cast<size_t>(v)];
      if (w < 0) {
        // Augment along the stack: re-pair every node on the path.
        int32_t right = v;
        for (size_t i = stack_.size(); i-- > 0;) {
          const int32_t left = stack_[i];
          const int32_t prev_right = match_left_[static_cast<size_t>(left)];
          match_left_[static_cast<size_t>(left)] = right;
          match_right_[static_cast<size_t>(right)] = left;
          right = prev_right;
        }
        return true;
      }
      if (dist_[static_cast<size_t>(w)] == dist_[static_cast<size_t>(u)] + 1) {
        stack_.push_back(w);
        advanced = true;
        break;
      }
    }
    if (!advanced) {
      dist_[static_cast<size_t>(u)] = kInf;  // Prune from this phase.
      stack_.pop_back();
    }
  }
  return false;
}

int64_t HopcroftKarp::Solve() {
  if (!adjacency_built_) {
    adj_start_.assign(static_cast<size_t>(num_left_) + 1, 0);
    for (int32_t u : edge_from_) {
      ++adj_start_[static_cast<size_t>(u) + 1];
    }
    for (size_t i = 1; i < adj_start_.size(); ++i) {
      adj_start_[i] += adj_start_[i - 1];
    }
    adj_.assign(edge_to_.size(), 0);
    // Reuse iter_ as the per-left write cursor during the counting sort.
    std::copy(adj_start_.begin(), adj_start_.end() - 1, iter_.begin());
    for (size_t e = 0; e < edge_from_.size(); ++e) {
      adj_[static_cast<size_t>(
          iter_[static_cast<size_t>(edge_from_[e])]++)] = edge_to_[e];
    }
    adjacency_built_ = true;
  }

  int64_t matching = 0;
  for (int32_t u = 0; u < num_left_; ++u) {
    if (match_left_[static_cast<size_t>(u)] >= 0) ++matching;
  }
  while (Bfs()) {
    std::copy(adj_start_.begin(), adj_start_.end() - 1, iter_.begin());
    for (int32_t u = 0; u < num_left_; ++u) {
      if (match_left_[static_cast<size_t>(u)] < 0 && Dfs(u)) {
        ++matching;
      }
    }
  }
  return matching;
}

}  // namespace ftoa
