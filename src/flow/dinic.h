// Dinic's max-flow algorithm (BFS level graph + blocking flow). On unit-
// capacity bipartite networks it runs in O(E * sqrt(V)), which makes it the
// default engine for offline guide generation and offline OPT ("any other
// max-flow algorithm is applicable", paper Section 4 note (1)).

#ifndef FTOA_FLOW_DINIC_H_
#define FTOA_FLOW_DINIC_H_

#include <vector>

#include "flow/graph.h"

namespace ftoa {

/// Computes the maximum s-t flow; the graph retains the resulting residual
/// capacities.
int64_t DinicMaxFlow(FlowGraph* graph, NodeId source, NodeId sink);

/// Computes the minimum s-t cut reachability after a max flow: returns a
/// boolean vector marking the nodes reachable from `source` in the residual
/// network. This is the "canonical reachability" cut used in the proof of
/// Lemma 2 and by tests validating max-flow = min-cut.
std::vector<bool> ResidualReachable(const FlowGraph& graph, NodeId source);

}  // namespace ftoa

#endif  // FTOA_FLOW_DINIC_H_
