// Dinic's max-flow algorithm (BFS level graph + blocking flow). On unit-
// capacity bipartite networks it runs in O(E * sqrt(V)), which makes it the
// default engine for offline guide generation and offline OPT ("any other
// max-flow algorithm is applicable", paper Section 4 note (1)).
//
// `DinicSolver` owns its scratch arrays (levels, edge cursors, BFS queue,
// DFS stack) and reuses them across calls, so a long-lived solver performs
// zero heap allocations per Solve once warmed up. The `DinicMaxFlow` free
// function remains as a one-shot convenience wrapper.

#ifndef FTOA_FLOW_DINIC_H_
#define FTOA_FLOW_DINIC_H_

#include <vector>

#include "flow/graph.h"

namespace ftoa {

/// Reusable Dinic solver; scratch buffers persist across Solve calls.
/// Not thread-safe.
class DinicSolver {
 public:
  DinicSolver() = default;

  /// Computes the maximum s-t flow; the graph retains the resulting
  /// residual capacities. May be called repeatedly, on different graphs.
  int64_t Solve(FlowGraph* graph, NodeId source, NodeId sink);

 private:
  bool Bfs(const FlowGraph& g, NodeId source, NodeId sink);
  int64_t BlockingPath(FlowGraph& g, NodeId source, NodeId sink,
                       int64_t limit);

  struct Frame {
    NodeId node;
    int64_t limit;
    EdgeId via;  // Edge taken from the parent frame, -1 at the root.
  };
  std::vector<int32_t> level_;
  std::vector<EdgeId> iter_;
  std::vector<NodeId> queue_;
  std::vector<Frame> stack_;
};

/// One-shot convenience wrapper around DinicSolver.
int64_t DinicMaxFlow(FlowGraph* graph, NodeId source, NodeId sink);

/// Computes the minimum s-t cut reachability after a max flow: returns a
/// boolean vector marking the nodes reachable from `source` in the residual
/// network. This is the "canonical reachability" cut used in the proof of
/// Lemma 2 and by tests validating max-flow = min-cut.
std::vector<bool> ResidualReachable(const FlowGraph& graph, NodeId source);

}  // namespace ftoa

#endif  // FTOA_FLOW_DINIC_H_
