#include "flow/flow_engine.h"

#include "util/string_util.h"

namespace ftoa {

const std::vector<std::string>& AllFlowEngineNames() {
  static const std::vector<std::string> kNames = {
      "ssp", "blocking-ssp", "cost-scaling", "auto"};
  return kNames;
}

const char* FlowEngineName(FlowEngine engine) {
  switch (engine) {
    case FlowEngine::kSsp:
      return "ssp";
    case FlowEngine::kBlockingSsp:
      return "blocking-ssp";
    case FlowEngine::kCostScaling:
      return "cost-scaling";
    case FlowEngine::kAuto:
      return "auto";
  }
  return "unknown";
}

Result<FlowEngine> ParseFlowEngine(const std::string& name) {
  if (name == "ssp") return FlowEngine::kSsp;
  if (name == "blocking-ssp") return FlowEngine::kBlockingSsp;
  if (name == "cost-scaling") return FlowEngine::kCostScaling;
  if (name == "auto") return FlowEngine::kAuto;
  return Status::NotFound("unknown flow engine \"" + name + "\" (valid: " +
                          Join(AllFlowEngineNames(), ", ") + ")");
}

FlowEngine ChooseFlowEngine(const FlowInstanceShape& shape) {
  // Thresholds from the BENCH_flow.json shape sweep (docs/flow_engines.md
  // holds the measured table this encodes):
  //  * Small remaining flow: the SSP core's early-exit Dijkstra amortizes
  //    better than a full phase settle — each unit is one cheap search.
  //  * Unit-capacity networks with heavy cost ties (the guide generator's
  //    node-level networks, whose quantized travel times repeat across
  //    every node pair of a type pair): blocking phases collapse O(F)
  //    searches into one search per cost class — measured 25x over ssp on
  //    tie-heavy 2048x2048 instances. The predictor is flow units per
  //    cost class: with all-distinct costs each phase admits ~one path and
  //    the full-cone settle is pure overhead (measured 3.6x *slower* than
  //    ssp on the distinct-cost dense sweep), so blocking needs supply to
  //    comfortably exceed the distinct-cost count.
  //  * Everything else — high-capacity networks (compressed type-pair
  //    networks, caps are predicted per-type counts) and distinct-cost
  //    unit networks: cost-scaling; its refine cost depends on network
  //    size, not flow value (measured 1.4-4.9x over ssp across the sweep,
  //    and never the worst engine on any measured shape).
  if (shape.num_edges <= 0 || shape.supply <= 0) return FlowEngine::kSsp;
  if (shape.supply <= 256) return FlowEngine::kSsp;
  const bool unit_dominated =
      shape.unit_capacity_edges * 10 >= shape.num_edges * 9;
  const bool tie_heavy = shape.cost_classes > 0 &&
                         shape.supply >= 4 * shape.cost_classes;
  if (unit_dominated && tie_heavy) return FlowEngine::kBlockingSsp;
  return FlowEngine::kCostScaling;
}

}  // namespace ftoa
