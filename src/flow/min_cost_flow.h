// Minimum-cost maximum-flow via successive shortest augmenting paths (SPFA
// for the potentials-free variant; costs here are travel times, always
// non-negative). Implements the paper's Section 4 note (2): adding travel
// costs to guide edges yields a maximum-cardinality matching with minimum
// total travel cost.

#ifndef FTOA_FLOW_MIN_COST_FLOW_H_
#define FTOA_FLOW_MIN_COST_FLOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftoa {

/// A directed network with capacities and per-unit costs.
class MinCostFlowGraph {
 public:
  explicit MinCostFlowGraph(int32_t num_nodes);

  /// Adds edge u -> v with capacity `cap` and per-unit cost `cost` >= 0.
  /// Returns the forward edge id (residual partner at id ^ 1).
  int32_t AddEdge(int32_t u, int32_t v, int64_t cap, int64_t cost);

  /// Result of a min-cost max-flow computation.
  struct Outcome {
    int64_t flow = 0;
    int64_t cost = 0;
  };

  /// Sends as much flow as possible from s to t, minimizing total cost among
  /// maximum flows. The graph retains residual state.
  Outcome Solve(int32_t s, int32_t t);

  /// Flow carried by forward edge `e`.
  int64_t Flow(int32_t e) const { return cap_[static_cast<size_t>(e ^ 1)]; }

  int32_t num_nodes() const { return static_cast<int32_t>(head_.size()); }

 private:
  std::vector<int32_t> head_;
  std::vector<int32_t> next_;
  std::vector<int32_t> to_;
  std::vector<int64_t> cap_;
  std::vector<int64_t> cost_;
};

}  // namespace ftoa

#endif  // FTOA_FLOW_MIN_COST_FLOW_H_
