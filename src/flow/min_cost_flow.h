// Minimum-cost maximum-flow via successive shortest augmenting paths.
//
// The production path (`Solve`) runs Dijkstra over Johnson-reduced costs
// with a binary heap. Node potentials pi(v) are maintained across
// augmentations so every residual arc keeps a non-negative reduced cost
//
//     rc(u -> v) = cost(u -> v) + pi(u) - pi(v) >= 0,        (invariant)
//
// which is what makes Dijkstra admissible on a residual network that
// contains negative reverse arcs. Edge costs must be non-negative (they are
// travel times here, paper Section 4 note (2)), so the initial potential is
// identically zero and no Bellman-Ford bootstrap is needed. After each
// Dijkstra round the potentials are advanced by the capped, shifted
// distance pi(v) += min(dist(v), dist(t)) - dist(t) for every node the
// search labelled. This is the standard capped update written so that
// unlabelled nodes — whose conceptual term min(inf, dist(t)) - dist(t) is
// zero — need no write, which keeps the update O(|touched|) despite the
// early exit when t settles; the uniform -dist(t) shift leaves every
// reduced cost unchanged. See the case analysis at the update site.
//
// Reuse contract: the solver owns all scratch buffers (distance labels,
// parent edges, heap storage, visit stamps). `Reset()` rewinds the graph
// for a new instance while keeping every allocation, and `ReserveEdges()`
// pre-sizes the edge arena, so steady-state use performs zero heap
// allocations per Solve.
//
// Warm-start contract: residual state persists across calls, so `Solve` is
// resumable — callers may inject a known feasible flow with `PushFlow`
// (e.g. a matching carried over from a previous batch) or append edges with
// `AddEdge` and call `Solve` again; only the *additional* flow is computed.
// Any operation that can break the potentials invariant (injected flow
// whose reverse arc goes reduced-cost-negative, an appended edge that is
// cheaper than the current potential gap, or a `SolveSpfa` run, which does
// not maintain potentials) flags the instance; the next `Solve` then first
// cancels any negative residual cycles — re-routing the already-carried
// flow so it is again min-cost for its value, which is what successive
// shortest paths require — and rebuilds the potentials with one
// label-correcting pass before resuming Dijkstra. The final state is
// therefore a true min-cost maximum flow no matter how the warm start was
// produced. Because cancellation can silently cheapen flow routed by
// *earlier* calls, a resumed call's Outcome counts only its own augmenting
// paths; use `TotalRoutedCost()` for whole-network cost claims.
//
// `SolveSpfa` preserves the original SPFA implementation verbatim as a
// test oracle and as the baseline leg of bench_micro_flow.

#ifndef FTOA_FLOW_MIN_COST_FLOW_H_
#define FTOA_FLOW_MIN_COST_FLOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftoa {

/// A directed network with capacities and per-unit costs. Not thread-safe:
/// the scratch arenas are owned by the object.
class MinCostFlowGraph {
 public:
  explicit MinCostFlowGraph(int32_t num_nodes = 0);

  /// Rewinds to an empty graph with `num_nodes` nodes, keeping all buffer
  /// capacity (edge arena, heap, labels) from previous instances.
  void Reset(int32_t num_nodes);

  /// Pre-sizes the edge arena for `num_edges` forward edges.
  void ReserveEdges(size_t num_edges);

  /// Appends one node (for incremental graph growth); returns its id.
  int32_t AddNode();

  /// Adds edge u -> v with capacity `cap` >= 0 and per-unit cost
  /// `cost` >= 0. Returns the forward edge id (residual partner at id ^ 1).
  int32_t AddEdge(int32_t u, int32_t v, int64_t cap, int64_t cost);

  /// Result of a min-cost max-flow computation.
  struct Outcome {
    int64_t flow = 0;
    int64_t cost = 0;
  };

  /// Sends as much flow as possible from s to t, minimizing total cost
  /// among maximum flows; Dijkstra with potentials (see file comment).
  /// Resumable: retains residual state and potentials, and returns only the
  /// flow/cost *added by this call*.
  Outcome Solve(int32_t s, int32_t t);

  /// Reference implementation: SPFA (Bellman-Ford queue variant) per
  /// augmenting path. Kept as the correctness oracle for randomized tests
  /// and as the baseline in bench_micro_flow. Does not maintain potentials;
  /// a later Solve() on the same instance first repairs them.
  Outcome SolveSpfa(int32_t s, int32_t t);

  /// Warm start: moves `amount` units of capacity from forward edge `e` to
  /// its reverse, declaring that flow as already routed. The caller asserts
  /// the combined pushes form a feasible s-t flow (conservation at interior
  /// nodes); costs of injected flow are not accumulated into any Outcome.
  void PushFlow(int32_t e, int64_t amount);

  /// Flow carried by forward edge `e`.
  int64_t Flow(int32_t e) const { return cap_[static_cast<size_t>(e ^ 1)]; }

  /// Total cost of the flow currently routed in the network,
  /// sum over forward edges of Flow(e) * EdgeCost(e). This is the
  /// authoritative cost after warm starts (see the warm-start contract).
  int64_t TotalRoutedCost() const;

  /// Per-unit cost of forward edge `e`.
  int64_t EdgeCost(int32_t e) const { return cost_[static_cast<size_t>(e)]; }

  int32_t num_nodes() const { return static_cast<int32_t>(head_.size()); }
  /// Number of forward edges.
  size_t num_edges() const { return to_.size() / 2; }

  /// Number of shortest-path computations run so far (instrumentation for
  /// benches and tests).
  int64_t path_searches() const { return path_searches_; }

 private:
  int64_t ReducedCost(int32_t e) const;
  /// Bellman-Ford negative-cycle detection + cancellation: re-routes the
  /// carried flow until the residual network has no negative cycle, i.e.
  /// the flow is min-cost for its value. O(V * E) per cancelled cycle;
  /// only runs on warm starts that actually broke optimality.
  void CancelNegativeCycles();
  /// Label-correcting fixpoint that lowers potentials until every residual
  /// arc has non-negative reduced cost; requires no negative cycles.
  void RepairPotentials(int32_t s);
  /// Dijkstra over reduced costs; returns true when t was reached and
  /// leaves dist_/in_edge_ describing the shortest-path tree.
  bool DijkstraOnce(int32_t s, int32_t t);

  // Graph arenas (edge e's residual partner is e ^ 1).
  std::vector<int32_t> head_;
  std::vector<int32_t> next_;
  std::vector<int32_t> to_;
  std::vector<int64_t> cap_;
  std::vector<int64_t> cost_;

  // Potentials and per-solve scratch, all reused across calls.
  std::vector<int64_t> potential_;
  std::vector<int64_t> dist_;
  std::vector<int32_t> in_edge_;
  std::vector<int32_t> stamp_;    // dist_/in_edge_ valid iff == round_.
  std::vector<int32_t> touched_;  // Nodes labelled in the current round.
  int32_t round_ = 0;
  struct HeapEntry {
    int64_t dist;
    int32_t node;
    bool operator<(const HeapEntry& other) const {
      return dist > other.dist;  // Min-heap via std::push_heap.
    }
  };
  std::vector<HeapEntry> heap_;
  // SPFA scratch (oracle path + potential repair).
  std::vector<uint8_t> in_queue_;
  std::vector<int32_t> queue_;

  bool needs_repair_ = false;
  int64_t path_searches_ = 0;
};

}  // namespace ftoa

#endif  // FTOA_FLOW_MIN_COST_FLOW_H_
