// Minimum-cost maximum-flow with selectable solver cores (FlowEngine).
//
// The classic path (`Solve(s, t)`, engine kSsp) runs successive shortest
// paths: Dijkstra over Johnson-reduced costs with a binary heap. Node
// potentials pi(v) are maintained across augmentations so every residual
// arc keeps a non-negative reduced cost
//
//     rc(u -> v) = cost(u -> v) + pi(u) - pi(v) >= 0,        (invariant)
//
// which is what makes Dijkstra admissible on a residual network that
// contains negative reverse arcs. Edge costs must be non-negative (they are
// travel times here, paper Section 4 note (2)), so the initial potential is
// identically zero and no Bellman-Ford bootstrap is needed. After each
// Dijkstra round the potentials are advanced by the capped, shifted
// distance pi(v) += min(dist(v), dist(t)) - dist(t) for every node the
// search labelled. This is the standard capped update written so that
// unlabelled nodes — whose conceptual term min(inf, dist(t)) - dist(t) is
// zero — need no write, which keeps the update O(|touched|) despite the
// early exit when t settles; the uniform -dist(t) shift leaves every
// reduced cost unchanged. See the case analysis at the update site.
//
// `Solve(s, t, engine)` selects among the registered cores
// (flow/flow_engine.h):
//  * kSsp          — the path above; one Dijkstra per augmentation.
//  * kBlockingSsp  — the same Dijkstra phase, but settling the whole
//                    dist <= dist(t) cone, then pushing a *blocking flow*
//                    over the admissible (reduced-cost-zero) subgraph, so
//                    one search feeds many augmenting paths. On
//                    unit-capacity bipartite networks this is the
//                    Hopcroft-Karp regime: O(sqrt(E)) phases.
//  * kCostScaling  — max flow first (Dinic on capacities), then
//                    Goldberg-Tarjan eps-scaling push-relabel refine on
//                    costs scaled by (n + 1): each round saturates every
//                    negative-reduced-cost arc and discharges node
//                    excesses FIFO until the pseudoflow is a circulation
//                    again; eps < 1 on scaled costs certifies exact
//                    optimality. Cost depends on network size, not flow
//                    value. Falls back to kBlockingSsp when the scaled
//                    cost range could overflow (see
//                    cost_scaling_fallbacks()).
//  * kAuto         — ChooseFlowEngine(ComputeShape(s)), a pure function of
//                    the instance shape (measured crossovers).
// Every engine produces an exact min-cost maximum flow and the same
// (flow, cost) outcome; equally-optimal per-edge flow patterns may differ
// between engines, so reproducibility-sensitive callers fix the engine
// (kAuto is deterministic for a fixed network).
//
// Overflow discipline: all label arithmetic (distances, potentials,
// reduced costs) saturates into [-kInfCost, kInfCost] via SatAddCost
// (min_cost_flow.cc) instead of wrapping, so adversarial cost ranges near
// int64 limits degrade to "unreachable" labels rather than undefined
// behavior. Exact *cost accounting* still requires path costs below
// kInfCost; the saturation guarantees the flow routing and termination
// stay correct beyond that.
//
// Reuse contract: the solver owns all scratch buffers (distance labels,
// parent edges, heap storage, visit stamps, level/cursor arrays, prices).
// `Reset()` rewinds the graph for a new instance while keeping every
// allocation, and `ReserveEdges()` pre-sizes the edge arena, so
// steady-state use performs zero heap allocations per Solve.
//
// Warm-start contract: residual state persists across calls, so `Solve` is
// resumable — callers may inject a known feasible flow with `PushFlow`
// (e.g. a matching carried over from a previous batch) or append edges with
// `AddEdge` and call `Solve` again; only the *additional* flow is computed.
// Any operation that can break the potentials invariant (injected flow
// whose reverse arc goes reduced-cost-negative, an appended edge that is
// cheaper than the current potential gap, a `SolveSpfa` run, or a
// kCostScaling solve, neither of which maintains potentials) flags the
// instance; the next potential-based Solve then first cancels any negative
// residual cycles — re-routing the already-carried flow so it is again
// min-cost for its value, which is what successive shortest paths require —
// and rebuilds the potentials with one label-correcting pass before
// resuming Dijkstra. The final state is therefore a true min-cost maximum
// flow no matter how the warm start was produced. Because cancellation (and
// a kCostScaling refine) can silently cheapen flow routed by *earlier*
// calls, a resumed call's Outcome counts only its own contribution; use
// `TotalRoutedCost()` for whole-network cost claims.
//
// Intra-solve parallelism: `SetParallelism` lends the solver a thread pool
// for the read-only scan halves of its phases — the blocking engine's
// admissible-BFS frontier expansion and the cost-scaling refine's
// saturation detection. Both shard a scan across threads and merge through
// an order-insensitive reduction (set-once level writes; integer sums), so
// the solved flow is bit-identical at any thread count. The pool must not
// be one whose workers are currently executing this Solve (tasks block on
// futures; see core/guide_generator for the safe wiring).
//
// `SolveSpfa` preserves the original SPFA implementation verbatim as a
// test oracle and as the baseline leg of bench_micro_flow.

#ifndef FTOA_FLOW_MIN_COST_FLOW_H_
#define FTOA_FLOW_MIN_COST_FLOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "flow/flow_engine.h"

namespace ftoa {

class ThreadPool;

/// A directed network with capacities and per-unit costs. Not thread-safe:
/// the scratch arenas are owned by the object.
class MinCostFlowGraph {
 public:
  explicit MinCostFlowGraph(int32_t num_nodes = 0);

  /// Rewinds to an empty graph with `num_nodes` nodes, keeping all buffer
  /// capacity (edge arena, heap, labels) from previous instances.
  void Reset(int32_t num_nodes);

  /// Pre-sizes the edge arena for `num_edges` forward edges.
  void ReserveEdges(size_t num_edges);

  /// Appends one node (for incremental graph growth); returns its id.
  int32_t AddNode();

  /// Adds edge u -> v with capacity `cap` >= 0 and per-unit cost
  /// `cost` >= 0. Returns the forward edge id (residual partner at id ^ 1).
  int32_t AddEdge(int32_t u, int32_t v, int64_t cap, int64_t cost);

  /// Result of a min-cost max-flow computation.
  struct Outcome {
    int64_t flow = 0;
    int64_t cost = 0;
  };

  /// Sends as much flow as possible from s to t, minimizing total cost
  /// among maximum flows; Dijkstra with potentials (engine kSsp).
  /// Resumable: retains residual state and potentials, and returns only the
  /// flow/cost *added by this call*.
  Outcome Solve(int32_t s, int32_t t);

  /// Same contract, with an explicit solver core. kAuto resolves through
  /// ChooseFlowEngine(ComputeShape(s)) before solving.
  Outcome Solve(int32_t s, int32_t t, FlowEngine engine);

  /// Reference implementation: SPFA (Bellman-Ford queue variant) per
  /// augmenting path. Kept as the correctness oracle for randomized tests
  /// and as the baseline in bench_micro_flow. Does not maintain potentials;
  /// a later Solve() on the same instance first repairs them.
  Outcome SolveSpfa(int32_t s, int32_t t);

  /// The kAuto selection inputs, measured from the current residual
  /// network: node/edge counts, residual supply out of `s`, and the
  /// original-capacity profile (unit-capacity edge share).
  FlowInstanceShape ComputeShape(int32_t s) const;

  /// Lends a pool for the intra-solve parallel scans (see file comment).
  /// `num_threads` caps the shards per scan; `min_parallel_items` is the
  /// scan size below which the serial path runs regardless (tests lower it
  /// to force the parallel path on small graphs). Pass pool == nullptr to
  /// return to fully serial solving.
  void SetParallelism(ThreadPool* pool, int num_threads,
                      int64_t min_parallel_items = 4096);

  /// Warm start: moves `amount` units of capacity from forward edge `e` to
  /// its reverse, declaring that flow as already routed. The caller asserts
  /// the combined pushes form a feasible s-t flow (conservation at interior
  /// nodes); costs of injected flow are not accumulated into any Outcome.
  void PushFlow(int32_t e, int64_t amount);

  /// Flow carried by forward edge `e`.
  int64_t Flow(int32_t e) const { return cap_[static_cast<size_t>(e ^ 1)]; }

  /// Total cost of the flow currently routed in the network,
  /// sum over forward edges of Flow(e) * EdgeCost(e). This is the
  /// authoritative cost after warm starts (see the warm-start contract).
  int64_t TotalRoutedCost() const;

  /// Per-unit cost of forward edge `e`.
  int64_t EdgeCost(int32_t e) const { return cost_[static_cast<size_t>(e)]; }

  int32_t num_nodes() const { return static_cast<int32_t>(head_.size()); }
  /// Number of forward edges.
  size_t num_edges() const { return to_.size() / 2; }

  /// Number of shortest-path computations run so far (instrumentation for
  /// benches and tests). A blocking phase counts as one search.
  int64_t path_searches() const { return path_searches_; }

  /// Blocking phases run by kBlockingSsp so far (instrumentation; each
  /// phase is one Dijkstra settle plus one or more blocking flows).
  int64_t blocking_phases() const { return blocking_phases_; }

  /// Refine rounds run by kCostScaling so far (instrumentation).
  int64_t refine_rounds() const { return refine_rounds_; }

  /// Times kCostScaling fell back to kBlockingSsp because the scaled cost
  /// range could overflow int64 (instrumentation; see file comment).
  int64_t cost_scaling_fallbacks() const { return cost_scaling_fallbacks_; }

 private:
  int64_t ReducedCost(int32_t e) const;
  /// Bellman-Ford negative-cycle detection + cancellation: re-routes the
  /// carried flow until the residual network has no negative cycle, i.e.
  /// the flow is min-cost for its value. O(V * E) per cancelled cycle;
  /// only runs on warm starts that actually broke optimality.
  void CancelNegativeCycles();
  /// Label-correcting fixpoint that lowers potentials until every residual
  /// arc has non-negative reduced cost; requires no negative cycles.
  void RepairPotentials(int32_t s);
  /// Re-establishes the potentials invariant if a warm start broke it.
  void RepairIfNeeded(int32_t s);
  /// Dijkstra over reduced costs; returns true when t was reached and
  /// leaves dist_/in_edge_ describing the shortest-path tree.
  bool DijkstraOnce(int32_t s, int32_t t);

  // --- kBlockingSsp internals.
  Outcome SolveBlocking(int32_t s, int32_t t);
  /// Dijkstra that settles every node with dist <= dist(t) (no early exit
  /// at t) and skips labels beyond dist(t); true when t was reached.
  bool DijkstraSettle(int32_t s, int32_t t);
  /// BFS levels from s over usable arcs (cap > 0, plus rc == 0 when
  /// `admissible` — the post-update shortest-path subgraph); true when t
  /// was levelled. Parallelizes frontier expansion when a pool is lent.
  bool BuildLevels(int32_t s, int32_t t, bool admissible);
  /// One blocking flow over the level graph (iterative DFS with per-node
  /// arc cursors); returns the flow pushed.
  int64_t BlockingAugment(int32_t s, int32_t t, bool admissible);

  // --- kCostScaling internals.
  Outcome SolveCostScaling(int32_t s, int32_t t);
  /// Dinic max flow on capacities only (costs ignored); flow added.
  int64_t MaxFlowDinic(int32_t s, int32_t t);
  /// One eps-scaling round: saturate every negative-reduced-cost residual
  /// arc (parallel detection when a pool is lent), then FIFO push-relabel
  /// discharge until all excesses return to zero.
  void Refine(int64_t eps, int64_t scale);

  // Graph arenas (edge e's residual partner is e ^ 1).
  std::vector<int32_t> head_;
  std::vector<int32_t> next_;
  std::vector<int32_t> to_;
  std::vector<int64_t> cap_;
  std::vector<int64_t> cost_;

  // Potentials and per-solve scratch, all reused across calls.
  std::vector<int64_t> potential_;
  std::vector<int64_t> dist_;
  std::vector<int32_t> in_edge_;
  std::vector<int32_t> stamp_;    // dist_/in_edge_ valid iff == round_.
  std::vector<int32_t> touched_;  // Nodes labelled in the current round.
  int32_t round_ = 0;
  struct HeapEntry {
    int64_t dist;
    int32_t node;
    bool operator<(const HeapEntry& other) const {
      return dist > other.dist;  // Min-heap via std::push_heap.
    }
  };
  std::vector<HeapEntry> heap_;
  // SPFA scratch (oracle path + potential repair).
  std::vector<uint8_t> in_queue_;
  std::vector<int32_t> queue_;
  // Blocking/Dinic scratch: BFS levels, per-node arc cursors, DFS path.
  std::vector<int32_t> level_;
  std::vector<int32_t> cur_;
  std::vector<int32_t> path_;
  std::vector<int32_t> frontier_;
  std::vector<int32_t> next_frontier_;
  // Cost-scaling scratch: prices and node excesses.
  std::vector<int64_t> price_;
  std::vector<int64_t> excess_;
  std::vector<int32_t> saturate_;  // Arc ids detected by the refine scan.
  // Per-shard result buffers for the parallel scans. Shards are contiguous
  // in-order partitions, so concatenating the buffers in shard order
  // reproduces the serial scan order exactly (the determinism argument).
  std::vector<std::vector<int32_t>> shard_buffers_;

  // Lent parallelism (never owned); see SetParallelism.
  ThreadPool* pool_ = nullptr;
  int pool_threads_ = 1;
  int64_t min_parallel_items_ = 4096;

  bool needs_repair_ = false;
  int64_t path_searches_ = 0;
  int64_t blocking_phases_ = 0;
  int64_t refine_rounds_ = 0;
  int64_t cost_scaling_fallbacks_ = 0;
};

}  // namespace ftoa

#endif  // FTOA_FLOW_MIN_COST_FLOW_H_
