// Fully dynamic maximum bipartite matching for incremental per-batch
// matching (the enabling structure behind the TGOA and GR baselines'
// carry-across-batches mode).
//
// Nodes are appended with AddLeft()/AddRight() and edges with AddEdge();
// edges live in a flat append-only arena threaded through per-node
// intrusive lists (iteration in insertion order, which keeps runs
// deterministic). Removing a node deactivates it in place and — when it was
// matched — re-augments from its abandoned partner, which restores
// maximality of the maintained matching (the classic one-path repair).
//
// The matching is maintained incrementally: each arriving object costs one
// augmenting-path search (Kuhn's DFS over live edges) instead of a
// from-scratch Hopcroft-Karp over the whole pool, and all scratch is owned
// by the object, so steady-state operation performs no heap allocations
// beyond arena growth.

#ifndef FTOA_FLOW_DYNAMIC_MATCHING_H_
#define FTOA_FLOW_DYNAMIC_MATCHING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftoa {

/// Maximum bipartite matching under node/edge insertion and node removal.
class DynamicBipartiteMatcher {
 public:
  DynamicBipartiteMatcher() = default;

  /// Rewinds to an empty graph, keeping all arena capacity.
  void Reset();

  /// Pre-sizes the arenas.
  void ReserveNodes(size_t num_left, size_t num_right);
  void ReserveEdges(size_t num_edges);

  /// Appends an active, unmatched node; returns its slot.
  int32_t AddLeft();
  int32_t AddRight();

  /// Adds an edge between active nodes `l` and `r`. Does not re-match; call
  /// TryAugmentLeft/Right (typically from the endpoint that just arrived).
  void AddEdge(int32_t l, int32_t r);

  /// Searches one augmenting path starting at the (active, unmatched) left
  /// node `l`; returns true when the matching grew. A false return means
  /// the maintained matching is already maximum with respect to `l`.
  bool TryAugmentLeft(int32_t l);
  /// Mirror image, starting from a right node.
  bool TryAugmentRight(int32_t r);

  /// Deactivates a node. If it was matched, its partner is released and one
  /// repair augmentation is run from the partner, which restores the
  /// maintained matching to maximum cardinality over the remaining actives.
  void RemoveLeft(int32_t l);
  void RemoveRight(int32_t r);

  /// Commits the matched pair (l, r): both nodes are deactivated and the
  /// pair leaves the matching with no repair (the pair departs together).
  /// Requires MatchOfLeft(l) == r.
  void RemovePair(int32_t l, int32_t r);

  /// Right partner of left `l`, or -1.
  int32_t MatchOfLeft(int32_t l) const {
    return match_left_[static_cast<size_t>(l)];
  }
  /// Left partner of right `r`, or -1.
  int32_t MatchOfRight(int32_t r) const {
    return match_right_[static_cast<size_t>(r)];
  }
  bool LeftActive(int32_t l) const {
    return active_left_[static_cast<size_t>(l)] != 0;
  }
  bool RightActive(int32_t r) const {
    return active_right_[static_cast<size_t>(r)] != 0;
  }

  int64_t matching_size() const { return matching_size_; }
  int32_t num_left() const { return static_cast<int32_t>(match_left_.size()); }
  int32_t num_right() const {
    return static_cast<int32_t>(match_right_.size());
  }
  size_t num_edges() const { return edge_right_.size(); }
  /// Augmenting-path searches run so far (instrumentation).
  int64_t augment_searches() const { return augment_searches_; }

 private:
  struct Frame {
    int32_t node;
    int32_t edge;  // Cursor into the node's edge list.
  };

  // Edge arena; per-edge endpoint + next pointer within each endpoint's
  // list. head/tail per node give insertion-order iteration.
  std::vector<int32_t> edge_left_;
  std::vector<int32_t> edge_right_;
  std::vector<int32_t> next_by_left_;
  std::vector<int32_t> next_by_right_;
  std::vector<int32_t> head_left_, tail_left_;
  std::vector<int32_t> head_right_, tail_right_;

  std::vector<int32_t> match_left_;
  std::vector<int32_t> match_right_;
  std::vector<uint8_t> active_left_;
  std::vector<uint8_t> active_right_;

  // DFS scratch: visit stamps per node per search + explicit stack.
  std::vector<int32_t> stamp_left_;
  std::vector<int32_t> stamp_right_;
  int32_t stamp_ = 0;
  std::vector<Frame> frames_;

  int64_t matching_size_ = 0;
  int64_t augment_searches_ = 0;
};

}  // namespace ftoa

#endif  // FTOA_FLOW_DYNAMIC_MATCHING_H_
