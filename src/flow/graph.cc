#include "flow/graph.h"

#include <cassert>

namespace ftoa {

FlowGraph::FlowGraph(NodeId num_nodes)
    : head_(static_cast<size_t>(num_nodes), -1) {}

void FlowGraph::Reset(NodeId num_nodes) {
  head_.assign(static_cast<size_t>(num_nodes), -1);
  next_.clear();
  to_.clear();
  cap_.clear();
}

EdgeId FlowGraph::AddEdge(NodeId u, NodeId v, int64_t cap) {
  assert(u >= 0 && u < num_nodes());
  assert(v >= 0 && v < num_nodes());
  assert(cap >= 0);
  const EdgeId forward = static_cast<EdgeId>(to_.size());
  to_.push_back(v);
  cap_.push_back(cap);
  next_.push_back(head_[static_cast<size_t>(u)]);
  head_[static_cast<size_t>(u)] = forward;

  to_.push_back(u);
  cap_.push_back(0);
  next_.push_back(head_[static_cast<size_t>(v)]);
  head_[static_cast<size_t>(v)] = forward + 1;
  return forward;
}

void FlowGraph::ReserveEdges(size_t num_edges) {
  to_.reserve(num_edges * 2);
  cap_.reserve(num_edges * 2);
  next_.reserve(num_edges * 2);
}

}  // namespace ftoa
