// Hopcroft-Karp maximum-cardinality bipartite matching, O(E * sqrt(V)).
// Used by offline OPT (the paper's OPT curve) and by the rebuild-per-batch
// reference mode of the GR baseline's window matching.
//
// Reusable: `Reset()` rewinds the instance while keeping every buffer
// allocation, and Solve() warm-starts from whatever matching is already
// installed (either left over from a previous Solve on the same graph or
// seeded via `SetMatch`), augmenting only for the remaining exposed nodes.

#ifndef FTOA_FLOW_HOPCROFT_KARP_H_
#define FTOA_FLOW_HOPCROFT_KARP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftoa {

/// Maximum matching over an explicit bipartite adjacency structure.
class HopcroftKarp {
 public:
  /// Creates an empty graph with `num_left` left and `num_right` right nodes.
  HopcroftKarp(int32_t num_left = 0, int32_t num_right = 0);

  /// Rewinds to an empty graph with the given sides, keeping all buffer
  /// capacity from previous instances (zero allocations once warmed up).
  void Reset(int32_t num_left, int32_t num_right);

  /// Adds an edge between left node `u` and right node `v` (0-based).
  void AddEdge(int32_t u, int32_t v);

  /// Reserve space for `num_edges` edges.
  void ReserveEdges(size_t num_edges);

  /// Warm start: installs the pair (u, v) into the current matching. Both
  /// endpoints must be unmatched; the pair should be an actual edge of the
  /// graph for the resulting matching to be meaningful.
  void SetMatch(int32_t u, int32_t v);

  /// Computes a maximum matching; returns its cardinality. Idempotent, and
  /// incremental: an existing matching (prior Solve or SetMatch) is kept
  /// and only exposed nodes are augmented from.
  int64_t Solve();

  /// Right partner of left node `u` after Solve(), or -1.
  int32_t MatchOfLeft(int32_t u) const {
    return match_left_[static_cast<size_t>(u)];
  }
  /// Left partner of right node `v` after Solve(), or -1.
  int32_t MatchOfRight(int32_t v) const {
    return match_right_[static_cast<size_t>(v)];
  }

  size_t num_edges() const { return edge_to_.size(); }

 private:
  bool Bfs();
  bool Dfs(int32_t u);

  int32_t num_left_ = 0;
  int32_t num_right_ = 0;
  // CSR-ish adjacency built lazily at Solve() time from the edge list.
  std::vector<int32_t> edge_from_;
  std::vector<int32_t> edge_to_;
  std::vector<int32_t> adj_start_;
  std::vector<int32_t> adj_;
  bool adjacency_built_ = false;

  std::vector<int32_t> match_left_;
  std::vector<int32_t> match_right_;
  std::vector<int32_t> dist_;
  std::vector<int32_t> queue_;
  std::vector<int32_t> iter_;
  std::vector<int32_t> stack_;
};

}  // namespace ftoa

#endif  // FTOA_FLOW_HOPCROFT_KARP_H_
