// Hopcroft-Karp maximum-cardinality bipartite matching, O(E * sqrt(V)).
// Used by offline OPT (the paper's OPT curve) and by the GR baseline's
// per-window batch matching.

#ifndef FTOA_FLOW_HOPCROFT_KARP_H_
#define FTOA_FLOW_HOPCROFT_KARP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftoa {

/// Maximum matching over an explicit bipartite adjacency structure.
class HopcroftKarp {
 public:
  /// Creates an empty graph with `num_left` left and `num_right` right nodes.
  HopcroftKarp(int32_t num_left, int32_t num_right);

  /// Adds an edge between left node `u` and right node `v` (0-based).
  void AddEdge(int32_t u, int32_t v);

  /// Reserve space for `num_edges` edges.
  void ReserveEdges(size_t num_edges);

  /// Computes a maximum matching; returns its cardinality. Idempotent.
  int64_t Solve();

  /// Right partner of left node `u` after Solve(), or -1.
  int32_t MatchOfLeft(int32_t u) const {
    return match_left_[static_cast<size_t>(u)];
  }
  /// Left partner of right node `v` after Solve(), or -1.
  int32_t MatchOfRight(int32_t v) const {
    return match_right_[static_cast<size_t>(v)];
  }

  size_t num_edges() const { return edge_to_.size(); }

 private:
  bool Bfs();
  bool Dfs(int32_t u);

  int32_t num_left_;
  int32_t num_right_;
  // CSR-ish adjacency built lazily at Solve() time from the edge list.
  std::vector<int32_t> edge_from_;
  std::vector<int32_t> edge_to_;
  std::vector<int32_t> adj_start_;
  std::vector<int32_t> adj_;
  bool adjacency_built_ = false;

  std::vector<int32_t> match_left_;
  std::vector<int32_t> match_right_;
  std::vector<int32_t> dist_;
  std::vector<int32_t> queue_;
  std::vector<int32_t> iter_;
};

}  // namespace ftoa

#endif  // FTOA_FLOW_HOPCROFT_KARP_H_
