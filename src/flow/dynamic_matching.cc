#include "flow/dynamic_matching.h"

#include <cassert>

namespace ftoa {

void DynamicBipartiteMatcher::Reset() {
  edge_left_.clear();
  edge_right_.clear();
  next_by_left_.clear();
  next_by_right_.clear();
  head_left_.clear();
  tail_left_.clear();
  head_right_.clear();
  tail_right_.clear();
  match_left_.clear();
  match_right_.clear();
  active_left_.clear();
  active_right_.clear();
  stamp_left_.clear();
  stamp_right_.clear();
  stamp_ = 0;
  matching_size_ = 0;
  augment_searches_ = 0;
}

void DynamicBipartiteMatcher::ReserveNodes(size_t num_left,
                                           size_t num_right) {
  head_left_.reserve(num_left);
  tail_left_.reserve(num_left);
  match_left_.reserve(num_left);
  active_left_.reserve(num_left);
  stamp_left_.reserve(num_left);
  head_right_.reserve(num_right);
  tail_right_.reserve(num_right);
  match_right_.reserve(num_right);
  active_right_.reserve(num_right);
  stamp_right_.reserve(num_right);
}

void DynamicBipartiteMatcher::ReserveEdges(size_t num_edges) {
  edge_left_.reserve(num_edges);
  edge_right_.reserve(num_edges);
  next_by_left_.reserve(num_edges);
  next_by_right_.reserve(num_edges);
}

int32_t DynamicBipartiteMatcher::AddLeft() {
  const int32_t slot = num_left();
  head_left_.push_back(-1);
  tail_left_.push_back(-1);
  match_left_.push_back(-1);
  active_left_.push_back(1);
  stamp_left_.push_back(0);
  return slot;
}

int32_t DynamicBipartiteMatcher::AddRight() {
  const int32_t slot = num_right();
  head_right_.push_back(-1);
  tail_right_.push_back(-1);
  match_right_.push_back(-1);
  active_right_.push_back(1);
  stamp_right_.push_back(0);
  return slot;
}

void DynamicBipartiteMatcher::AddEdge(int32_t l, int32_t r) {
  assert(LeftActive(l) && RightActive(r));
  const int32_t e = static_cast<int32_t>(edge_left_.size());
  edge_left_.push_back(l);
  edge_right_.push_back(r);
  next_by_left_.push_back(-1);
  next_by_right_.push_back(-1);
  // Append (not prepend) so iteration follows insertion order: incremental
  // runs then visit candidates in the same order a fresh build would.
  if (tail_left_[static_cast<size_t>(l)] == -1) {
    head_left_[static_cast<size_t>(l)] = e;
  } else {
    next_by_left_[static_cast<size_t>(tail_left_[static_cast<size_t>(l)])] =
        e;
  }
  tail_left_[static_cast<size_t>(l)] = e;
  if (tail_right_[static_cast<size_t>(r)] == -1) {
    head_right_[static_cast<size_t>(r)] = e;
  } else {
    next_by_right_[static_cast<size_t>(
        tail_right_[static_cast<size_t>(r)])] = e;
  }
  tail_right_[static_cast<size_t>(r)] = e;
}

bool DynamicBipartiteMatcher::TryAugmentLeft(int32_t l) {
  assert(LeftActive(l));
  if (match_left_[static_cast<size_t>(l)] >= 0) return false;
  ++augment_searches_;
  ++stamp_;
  frames_.clear();
  frames_.push_back(Frame{l, head_left_[static_cast<size_t>(l)]});
  stamp_left_[static_cast<size_t>(l)] = stamp_;
  while (!frames_.empty()) {
    Frame& frame = frames_.back();
    bool advanced = false;
    while (frame.edge != -1) {
      const int32_t e = frame.edge;
      frame.edge = next_by_left_[static_cast<size_t>(e)];
      const int32_t r = edge_right_[static_cast<size_t>(e)];
      if (!RightActive(r) || stamp_right_[static_cast<size_t>(r)] == stamp_) {
        continue;
      }
      stamp_right_[static_cast<size_t>(r)] = stamp_;
      const int32_t w = match_right_[static_cast<size_t>(r)];
      if (w < 0) {
        // Augment along the stack: each frame's left takes the right it
        // descended through; the root takes r.
        int32_t right = r;
        for (size_t i = frames_.size(); i-- > 0;) {
          const int32_t left = frames_[i].node;
          const int32_t prev_right = match_left_[static_cast<size_t>(left)];
          match_left_[static_cast<size_t>(left)] = right;
          match_right_[static_cast<size_t>(right)] = left;
          right = prev_right;
        }
        ++matching_size_;
        return true;
      }
      frames_.push_back(Frame{w, head_left_[static_cast<size_t>(w)]});
      advanced = true;
      break;
    }
    if (!advanced) frames_.pop_back();
  }
  return false;
}

bool DynamicBipartiteMatcher::TryAugmentRight(int32_t r) {
  assert(RightActive(r));
  if (match_right_[static_cast<size_t>(r)] >= 0) return false;
  ++augment_searches_;
  ++stamp_;
  frames_.clear();
  frames_.push_back(Frame{r, head_right_[static_cast<size_t>(r)]});
  stamp_right_[static_cast<size_t>(r)] = stamp_;
  while (!frames_.empty()) {
    Frame& frame = frames_.back();
    bool advanced = false;
    while (frame.edge != -1) {
      const int32_t e = frame.edge;
      frame.edge = next_by_right_[static_cast<size_t>(e)];
      const int32_t l = edge_left_[static_cast<size_t>(e)];
      if (!LeftActive(l) || stamp_left_[static_cast<size_t>(l)] == stamp_) {
        continue;
      }
      stamp_left_[static_cast<size_t>(l)] = stamp_;
      const int32_t w = match_left_[static_cast<size_t>(l)];
      if (w < 0) {
        int32_t left = l;
        for (size_t i = frames_.size(); i-- > 0;) {
          const int32_t right = frames_[i].node;
          const int32_t prev_left = match_right_[static_cast<size_t>(right)];
          match_right_[static_cast<size_t>(right)] = left;
          match_left_[static_cast<size_t>(left)] = right;
          left = prev_left;
        }
        ++matching_size_;
        return true;
      }
      frames_.push_back(Frame{w, head_right_[static_cast<size_t>(w)]});
      advanced = true;
      break;
    }
    if (!advanced) frames_.pop_back();
  }
  return false;
}

void DynamicBipartiteMatcher::RemoveLeft(int32_t l) {
  if (!LeftActive(l)) return;
  active_left_[static_cast<size_t>(l)] = 0;
  const int32_t r = match_left_[static_cast<size_t>(l)];
  if (r >= 0) {
    match_left_[static_cast<size_t>(l)] = -1;
    match_right_[static_cast<size_t>(r)] = -1;
    --matching_size_;
    // One repair search from the abandoned partner restores maximality.
    TryAugmentRight(r);
  }
}

void DynamicBipartiteMatcher::RemoveRight(int32_t r) {
  if (!RightActive(r)) return;
  active_right_[static_cast<size_t>(r)] = 0;
  const int32_t l = match_right_[static_cast<size_t>(r)];
  if (l >= 0) {
    match_right_[static_cast<size_t>(r)] = -1;
    match_left_[static_cast<size_t>(l)] = -1;
    --matching_size_;
    TryAugmentLeft(l);
  }
}

void DynamicBipartiteMatcher::RemovePair(int32_t l, int32_t r) {
  assert(match_left_[static_cast<size_t>(l)] == r);
  match_left_[static_cast<size_t>(l)] = -1;
  match_right_[static_cast<size_t>(r)] = -1;
  active_left_[static_cast<size_t>(l)] = 0;
  active_right_[static_cast<size_t>(r)] = 0;
  --matching_size_;
}

}  // namespace ftoa
