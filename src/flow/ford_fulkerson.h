// Ford-Fulkerson max flow with DFS augmenting paths — the algorithm the
// paper's Algorithm 1 (offline guide generation) cites explicitly [5].
// O(maxflow * |E|); appropriate for unit-capacity bipartite networks of
// moderate size and kept as the faithful reference implementation (Dinic is
// the fast path, see dinic.h and the E15 ablation bench).

#ifndef FTOA_FLOW_FORD_FULKERSON_H_
#define FTOA_FLOW_FORD_FULKERSON_H_

#include "flow/graph.h"

namespace ftoa {

/// Computes the maximum s-t flow; the graph retains the resulting residual
/// capacities (query per-edge flow via FlowGraph::Flow).
int64_t FordFulkersonMaxFlow(FlowGraph* graph, NodeId source, NodeId sink);

}  // namespace ftoa

#endif  // FTOA_FLOW_FORD_FULKERSON_H_
