// FlowEngine — the registry of min-cost max-flow solver cores behind
// MinCostFlowGraph::Solve(s, t, engine), mirroring the algorithm and
// shard-router registries (one source of truth for names, parsing, and the
// CLI usage string).
//
// Engines (see docs/flow_engines.md for the catalog and measured
// crossovers):
//  * kSsp — successive shortest paths, one Dijkstra (over Johnson reduced
//    costs) per augmentation. Lowest constant factor; the right core when
//    the flow value is small.
//  * kBlockingSsp — the same Dijkstra phase, but each phase settles the
//    whole <= dist(t) cone and then pushes a *blocking flow* over the
//    admissible (zero-reduced-cost) subgraph, augmenting many shortest
//    paths per search. On the unit-capacity bipartite networks guide
//    generation emits this needs O(sqrt(E)) phases instead of O(F)
//    searches (the Hopcroft-Karp bound).
//  * kCostScaling — push-relabel on eps-optimal pseudoflows (Goldberg-
//    Tarjan refine): max flow first, then cost-scaling rounds that halve..
//    eighth eps until eps < 1 certifies optimality of the scaled costs.
//    Insensitive to the flow value; wins on high-capacity networks where
//    augmenting-path cores pay per unit.
//  * kAuto — picks one of the above from the instance shape via
//    ChooseFlowEngine (measured crossover points, not guesses).
//
// Every engine computes an exact min-cost maximum flow; they may return
// different (equally optimal) per-edge flow patterns, so callers that need
// reproducibility fix the engine (kAuto is a pure function of the instance
// shape, so a fixed instance always gets the same engine).

#ifndef FTOA_FLOW_FLOW_ENGINE_H_
#define FTOA_FLOW_FLOW_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace ftoa {

enum class FlowEngine {
  kSsp,
  kBlockingSsp,
  kCostScaling,
  kAuto,
};

/// Canonical names, in declaration order ("ssp", "blocking-ssp",
/// "cost-scaling", "auto") — the CLI usage string and unknown-value errors
/// both derive from this list.
const std::vector<std::string>& AllFlowEngineNames();

/// Canonical name of `engine`.
const char* FlowEngineName(FlowEngine engine);

/// Parses a canonical name; NotFound (listing the valid set) otherwise.
Result<FlowEngine> ParseFlowEngine(const std::string& name);

/// What kAuto looks at. Computed by MinCostFlowGraph::ComputeShape from the
/// network itself, so selection needs no caller-side bookkeeping.
struct FlowInstanceShape {
  int64_t num_nodes = 0;
  int64_t num_edges = 0;        ///< Forward edges.
  int64_t supply = 0;           ///< Residual capacity out of the source —
                                ///  an upper bound on the remaining flow.
  int64_t max_capacity = 0;     ///< Largest forward-edge capacity.
  int64_t unit_capacity_edges = 0;  ///< Forward edges with capacity 1.
  int64_t cost_classes = 0;     ///< Distinct forward-edge cost values — the
                                ///  tie-density signal: blocking phases only
                                ///  pay off when many shortest paths share a
                                ///  cost class (see ChooseFlowEngine).
};

/// The kAuto selection rule: a pure function of the shape, with thresholds
/// set from the measured crossover points in BENCH_flow.json (see
/// docs/flow_engines.md; bench_micro_flow re-measures them per host).
FlowEngine ChooseFlowEngine(const FlowInstanceShape& shape);

}  // namespace ftoa

#endif  // FTOA_FLOW_FLOW_ENGINE_H_
