#include "flow/ford_fulkerson.h"

#include <algorithm>
#include <vector>

namespace ftoa {

namespace {

// Iterative DFS looking for one augmenting path; returns the bottleneck
// (0 when no path exists) and augments along the path.
int64_t Augment(FlowGraph& g, NodeId source, NodeId sink,
                std::vector<int32_t>& visit_mark, int32_t epoch,
                std::vector<EdgeId>& path_edges,
                std::vector<EdgeId>& dfs_stack,
                std::vector<NodeId>& node_stack) {
  // dfs_stack holds the edge iterator per depth; path_edges the chosen edge.
  path_edges.clear();
  dfs_stack.clear();
  node_stack.clear();
  node_stack.push_back(source);
  dfs_stack.push_back(g.head()[static_cast<size_t>(source)]);
  visit_mark[static_cast<size_t>(source)] = epoch;

  while (!node_stack.empty()) {
    EdgeId& it = dfs_stack.back();
    bool advanced = false;
    while (it != -1) {
      const EdgeId e = it;
      it = g.next()[static_cast<size_t>(e)];
      const NodeId v = g.To(e);
      if (g.Capacity(e) <= 0) continue;
      if (visit_mark[static_cast<size_t>(v)] == epoch) continue;
      visit_mark[static_cast<size_t>(v)] = epoch;
      path_edges.push_back(e);
      if (v == sink) {
        // Compute bottleneck and augment.
        int64_t bottleneck = g.Capacity(path_edges[0]);
        for (EdgeId pe : path_edges) {
          bottleneck = std::min(bottleneck, g.Capacity(pe));
        }
        for (EdgeId pe : path_edges) {
          g.cap()[static_cast<size_t>(pe)] -= bottleneck;
          g.cap()[static_cast<size_t>(pe ^ 1)] += bottleneck;
        }
        return bottleneck;
      }
      node_stack.push_back(v);
      dfs_stack.push_back(g.head()[static_cast<size_t>(v)]);
      advanced = true;
      break;
    }
    if (!advanced) {
      node_stack.pop_back();
      dfs_stack.pop_back();
      if (!path_edges.empty()) path_edges.pop_back();
    }
  }
  return 0;
}

}  // namespace

int64_t FordFulkersonMaxFlow(FlowGraph* graph, NodeId source, NodeId sink) {
  FlowGraph& g = *graph;
  std::vector<int32_t> visit_mark(static_cast<size_t>(g.num_nodes()), 0);
  std::vector<EdgeId> path_edges;
  std::vector<EdgeId> dfs_stack;
  std::vector<NodeId> node_stack;
  int64_t total = 0;
  int32_t epoch = 0;
  while (true) {
    ++epoch;
    const int64_t pushed = Augment(g, source, sink, visit_mark, epoch,
                                   path_edges, dfs_stack, node_stack);
    if (pushed == 0) break;
    total += pushed;
  }
  return total;
}

}  // namespace ftoa
