#include "flow/dinic.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace ftoa {

namespace {

class DinicSolver {
 public:
  DinicSolver(FlowGraph& g, NodeId source, NodeId sink)
      : g_(g),
        source_(source),
        sink_(sink),
        level_(static_cast<size_t>(g.num_nodes())),
        iter_(static_cast<size_t>(g.num_nodes())) {}

  int64_t Solve() {
    int64_t total = 0;
    while (Bfs()) {
      std::copy(g_.head().begin(), g_.head().end(), iter_.begin());
      while (true) {
        const int64_t pushed =
            Dfs(source_, std::numeric_limits<int64_t>::max());
        if (pushed == 0) break;
        total += pushed;
      }
    }
    return total;
  }

 private:
  bool Bfs() {
    std::fill(level_.begin(), level_.end(), -1);
    queue_.clear();
    queue_.push_back(source_);
    level_[static_cast<size_t>(source_)] = 0;
    for (size_t qi = 0; qi < queue_.size(); ++qi) {
      const NodeId u = queue_[qi];
      for (EdgeId e = g_.head()[static_cast<size_t>(u)]; e != -1;
           e = g_.next()[static_cast<size_t>(e)]) {
        const NodeId v = g_.To(e);
        if (g_.Capacity(e) > 0 && level_[static_cast<size_t>(v)] < 0) {
          level_[static_cast<size_t>(v)] =
              level_[static_cast<size_t>(u)] + 1;
          queue_.push_back(v);
        }
      }
    }
    return level_[static_cast<size_t>(sink_)] >= 0;
  }

  // Iterative blocking-flow DFS along level-increasing edges.
  int64_t Dfs(NodeId start, int64_t limit) {
    if (start == sink_) return limit;
    struct Frame {
      NodeId node;
      int64_t limit;
      EdgeId via;  // Edge taken from the parent frame, -1 at the root.
    };
    std::vector<Frame> stack;
    stack.push_back(Frame{start, limit, -1});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId u = frame.node;
      EdgeId& it = iter_[static_cast<size_t>(u)];
      bool advanced = false;
      while (it != -1) {
        const EdgeId e = it;
        const NodeId v = g_.To(e);
        if (g_.Capacity(e) > 0 &&
            level_[static_cast<size_t>(v)] ==
                level_[static_cast<size_t>(u)] + 1) {
          const int64_t next_limit = std::min(frame.limit, g_.Capacity(e));
          if (v == sink_) {
            // Augment the whole path stored on the stack plus edge e.
            g_.cap()[static_cast<size_t>(e)] -= next_limit;
            g_.cap()[static_cast<size_t>(e ^ 1)] += next_limit;
            for (size_t i = stack.size(); i-- > 1;) {
              const EdgeId pe = stack[i].via;
              g_.cap()[static_cast<size_t>(pe)] -= next_limit;
              g_.cap()[static_cast<size_t>(pe ^ 1)] += next_limit;
            }
            return next_limit;
          }
          stack.push_back(Frame{v, next_limit, e});
          advanced = true;
          break;
        }
        it = g_.next()[static_cast<size_t>(e)];
      }
      if (!advanced) {
        // Dead end: remove u from the level graph and backtrack.
        level_[static_cast<size_t>(u)] = -1;
        stack.pop_back();
        if (!stack.empty()) {
          const NodeId parent = stack.back().node;
          EdgeId& parent_it = iter_[static_cast<size_t>(parent)];
          parent_it = g_.next()[static_cast<size_t>(parent_it)];
        }
      }
    }
    return 0;
  }

  FlowGraph& g_;
  NodeId source_;
  NodeId sink_;
  std::vector<int32_t> level_;
  std::vector<EdgeId> iter_;
  std::vector<NodeId> queue_;
};

}  // namespace

int64_t DinicMaxFlow(FlowGraph* graph, NodeId source, NodeId sink) {
  DinicSolver solver(*graph, source, sink);
  return solver.Solve();
}

std::vector<bool> ResidualReachable(const FlowGraph& graph, NodeId source) {
  std::vector<bool> reachable(static_cast<size_t>(graph.num_nodes()), false);
  std::vector<NodeId> queue;
  queue.push_back(source);
  reachable[static_cast<size_t>(source)] = true;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const NodeId u = queue[qi];
    for (EdgeId e = graph.head()[static_cast<size_t>(u)]; e != -1;
         e = graph.next()[static_cast<size_t>(e)]) {
      const NodeId v = graph.To(e);
      if (graph.Capacity(e) > 0 && !reachable[static_cast<size_t>(v)]) {
        reachable[static_cast<size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return reachable;
}

}  // namespace ftoa
