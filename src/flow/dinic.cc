#include "flow/dinic.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace ftoa {

bool DinicSolver::Bfs(const FlowGraph& g, NodeId source, NodeId sink) {
  std::fill(level_.begin(), level_.end(), -1);
  queue_.clear();
  queue_.push_back(source);
  level_[static_cast<size_t>(source)] = 0;
  for (size_t qi = 0; qi < queue_.size(); ++qi) {
    const NodeId u = queue_[qi];
    for (EdgeId e = g.head()[static_cast<size_t>(u)]; e != -1;
         e = g.next()[static_cast<size_t>(e)]) {
      const NodeId v = g.To(e);
      if (g.Capacity(e) > 0 && level_[static_cast<size_t>(v)] < 0) {
        level_[static_cast<size_t>(v)] = level_[static_cast<size_t>(u)] + 1;
        queue_.push_back(v);
      }
    }
  }
  return level_[static_cast<size_t>(sink)] >= 0;
}

// Iterative blocking-flow DFS along level-increasing edges.
int64_t DinicSolver::BlockingPath(FlowGraph& g, NodeId source, NodeId sink,
                                  int64_t limit) {
  if (source == sink) return limit;
  stack_.clear();
  stack_.push_back(Frame{source, limit, -1});
  while (!stack_.empty()) {
    Frame& frame = stack_.back();
    const NodeId u = frame.node;
    EdgeId& it = iter_[static_cast<size_t>(u)];
    bool advanced = false;
    while (it != -1) {
      const EdgeId e = it;
      const NodeId v = g.To(e);
      if (g.Capacity(e) > 0 &&
          level_[static_cast<size_t>(v)] ==
              level_[static_cast<size_t>(u)] + 1) {
        const int64_t next_limit = std::min(frame.limit, g.Capacity(e));
        if (v == sink) {
          // Augment the whole path stored on the stack plus edge e.
          g.cap()[static_cast<size_t>(e)] -= next_limit;
          g.cap()[static_cast<size_t>(e ^ 1)] += next_limit;
          for (size_t i = stack_.size(); i-- > 1;) {
            const EdgeId pe = stack_[i].via;
            g.cap()[static_cast<size_t>(pe)] -= next_limit;
            g.cap()[static_cast<size_t>(pe ^ 1)] += next_limit;
          }
          return next_limit;
        }
        stack_.push_back(Frame{v, next_limit, e});
        advanced = true;
        break;
      }
      it = g.next()[static_cast<size_t>(e)];
    }
    if (!advanced) {
      // Dead end: remove u from the level graph and backtrack.
      level_[static_cast<size_t>(u)] = -1;
      stack_.pop_back();
      if (!stack_.empty()) {
        const NodeId parent = stack_.back().node;
        EdgeId& parent_it = iter_[static_cast<size_t>(parent)];
        parent_it = g.next()[static_cast<size_t>(parent_it)];
      }
    }
  }
  return 0;
}

int64_t DinicSolver::Solve(FlowGraph* graph, NodeId source, NodeId sink) {
  FlowGraph& g = *graph;
  const size_t n = static_cast<size_t>(g.num_nodes());
  if (level_.size() < n) {
    level_.resize(n);
    iter_.resize(n);
  }
  int64_t total = 0;
  while (Bfs(g, source, sink)) {
    std::copy(g.head().begin(), g.head().end(), iter_.begin());
    while (true) {
      const int64_t pushed =
          BlockingPath(g, source, sink, std::numeric_limits<int64_t>::max());
      if (pushed == 0) break;
      total += pushed;
    }
  }
  return total;
}

int64_t DinicMaxFlow(FlowGraph* graph, NodeId source, NodeId sink) {
  DinicSolver solver;
  return solver.Solve(graph, source, sink);
}

std::vector<bool> ResidualReachable(const FlowGraph& graph, NodeId source) {
  std::vector<bool> reachable(static_cast<size_t>(graph.num_nodes()), false);
  std::vector<NodeId> queue;
  queue.push_back(source);
  reachable[static_cast<size_t>(source)] = true;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const NodeId u = queue[qi];
    for (EdgeId e = graph.head()[static_cast<size_t>(u)]; e != -1;
         e = graph.next()[static_cast<size_t>(e)]) {
      const NodeId v = graph.To(e);
      if (graph.Capacity(e) > 0 && !reachable[static_cast<size_t>(v)]) {
        reachable[static_cast<size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return reachable;
}

}  // namespace ftoa
