// Residual flow network shared by the max-flow algorithms (Ford-Fulkerson,
// Dinic) and the min-cost variant. Edges are stored in a flat arena with
// paired residual edges at (e ^ 1), the classical competitive-programming
// layout, which keeps augmentation cache-friendly.

#ifndef FTOA_FLOW_GRAPH_H_
#define FTOA_FLOW_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ftoa {

/// Node index within a FlowGraph.
using NodeId = int32_t;
/// Edge index within a FlowGraph; the residual partner is (edge ^ 1).
using EdgeId = int32_t;

/// A directed flow network with integer capacities.
class FlowGraph {
 public:
  /// Creates a graph with `num_nodes` nodes and no edges.
  explicit FlowGraph(NodeId num_nodes = 0);

  /// Rewinds to an empty graph with `num_nodes` nodes, keeping the edge
  /// arena's allocation so a long-lived graph can be rebuilt without
  /// touching the heap.
  void Reset(NodeId num_nodes);

  /// Adds edge u -> v with capacity `cap` (and the residual v -> u with 0).
  /// Returns the id of the forward edge. Capacities must be non-negative.
  EdgeId AddEdge(NodeId u, NodeId v, int64_t cap);

  /// Optionally reserve space for `num_edges` forward edges up front.
  void ReserveEdges(size_t num_edges);

  NodeId num_nodes() const { return static_cast<NodeId>(head_.size()); }
  size_t num_edges() const { return to_.size() / 2; }

  /// Flow currently carried by forward edge `e` (its residual partner's
  /// capacity).
  int64_t Flow(EdgeId e) const { return cap_[static_cast<size_t>(e ^ 1)]; }

  /// Remaining capacity of edge `e`.
  int64_t Capacity(EdgeId e) const { return cap_[static_cast<size_t>(e)]; }

  /// Head (target node) of edge `e`.
  NodeId To(EdgeId e) const { return to_[static_cast<size_t>(e)]; }

  // Internal arrays exposed to the algorithms in this module.
  const std::vector<EdgeId>& head() const { return head_; }
  const std::vector<EdgeId>& next() const { return next_; }
  std::vector<int64_t>& cap() { return cap_; }
  const std::vector<int64_t>& cap() const { return cap_; }
  const std::vector<NodeId>& to() const { return to_; }

 private:
  std::vector<EdgeId> head_;   // First edge per node, -1 when none.
  std::vector<EdgeId> next_;   // Next edge in the node's list.
  std::vector<NodeId> to_;     // Edge targets.
  std::vector<int64_t> cap_;   // Residual capacities.
};

}  // namespace ftoa

#endif  // FTOA_FLOW_GRAPH_H_
