#include "flow/min_cost_flow.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <limits>
#include <vector>

#include "util/thread_pool.h"

namespace ftoa {

namespace {
constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;

/// Saturating add: clamps into [-kInf, kInf] instead of wrapping. Label
/// arithmetic (`dist + reduced cost`, `potential + cost`) must go through
/// this: a kInf-seeded label plus an adversarial near-limit cost exceeds
/// kInf *before* any `>= kInf` unreachability check and is signed-overflow
/// UB with plain +. Saturation keeps such labels pinned at the "effectively
/// unreachable" rail, so routing decisions and termination stay correct;
/// only the (already meaningless) cost accounting degrades out there.
int64_t SatAdd(int64_t a, int64_t b) {
  int64_t sum;
  if (__builtin_add_overflow(a, b, &sum)) return b > 0 ? kInf : -kInf;
  return std::clamp<int64_t>(sum, -kInf, kInf);
}
}  // namespace

MinCostFlowGraph::MinCostFlowGraph(int32_t num_nodes) { Reset(num_nodes); }

void MinCostFlowGraph::Reset(int32_t num_nodes) {
  head_.assign(static_cast<size_t>(num_nodes), -1);
  next_.clear();
  to_.clear();
  cap_.clear();
  cost_.clear();
  potential_.assign(static_cast<size_t>(num_nodes), 0);
  stamp_.assign(static_cast<size_t>(num_nodes), 0);
  round_ = 0;
  needs_repair_ = false;
  // dist_/in_edge_ are stamped, heap_/touched_/queue_ cleared per use; they
  // only ever need to be at least num_nodes long. level_/cur_ are sized
  // lazily at engine entry and guarded by stamps/fills per use.
  if (dist_.size() < static_cast<size_t>(num_nodes)) {
    dist_.resize(static_cast<size_t>(num_nodes));
    in_edge_.resize(static_cast<size_t>(num_nodes));
  }
}

void MinCostFlowGraph::ReserveEdges(size_t num_edges) {
  to_.reserve(num_edges * 2);
  cap_.reserve(num_edges * 2);
  cost_.reserve(num_edges * 2);
  next_.reserve(num_edges * 2);
}

int32_t MinCostFlowGraph::AddNode() {
  const int32_t id = num_nodes();
  head_.push_back(-1);
  potential_.push_back(0);
  stamp_.push_back(0);
  if (dist_.size() < head_.size()) {
    dist_.push_back(0);
    in_edge_.push_back(-1);
  }
  return id;
}

int64_t MinCostFlowGraph::ReducedCost(int32_t e) const {
  const int32_t u = to_[static_cast<size_t>(e ^ 1)];
  const int32_t v = to_[static_cast<size_t>(e)];
  // Potentials live in [-kInf, 0] (they start at zero and only ever
  // decrease through SatAdd), so the negation is safe and the nested
  // saturating adds clamp instead of wrapping on near-limit costs.
  return SatAdd(SatAdd(cost_[static_cast<size_t>(e)],
                       potential_[static_cast<size_t>(u)]),
                -potential_[static_cast<size_t>(v)]);
}

int32_t MinCostFlowGraph::AddEdge(int32_t u, int32_t v, int64_t cap,
                                  int64_t cost) {
  assert(u >= 0 && u < num_nodes());
  assert(v >= 0 && v < num_nodes());
  assert(cap >= 0);
  assert(cost >= 0);
  // Arc ids are int32 (`e ^ 1` pairing); a city-scale caller overflowing
  // them must die at the boundary instead of silently wrapping ids.
  if (to_.size() >=
      static_cast<size_t>(std::numeric_limits<int32_t>::max()) - 1) {
    std::fprintf(stderr,
                 "MinCostFlowGraph: edge count would exceed int32 arc ids "
                 "(%zu arcs)\n",
                 to_.size());
    std::abort();
  }
  const int32_t forward = static_cast<int32_t>(to_.size());
  to_.push_back(v);
  cap_.push_back(cap);
  cost_.push_back(cost);
  next_.push_back(head_[static_cast<size_t>(u)]);
  head_[static_cast<size_t>(u)] = forward;

  to_.push_back(u);
  cap_.push_back(0);
  cost_.push_back(-cost);
  next_.push_back(head_[static_cast<size_t>(v)]);
  head_[static_cast<size_t>(v)] = forward + 1;

  // An edge appended after earlier Solve rounds can undercut the current
  // potential gap; flag for repair instead of re-running Bellman-Ford now.
  if (cap > 0 && ReducedCost(forward) < 0) needs_repair_ = true;
  return forward;
}

void MinCostFlowGraph::PushFlow(int32_t e, int64_t amount) {
  assert(e >= 0 && static_cast<size_t>(e) < to_.size());
  assert(amount >= 0 && amount <= cap_[static_cast<size_t>(e)]);
  cap_[static_cast<size_t>(e)] -= amount;
  cap_[static_cast<size_t>(e ^ 1)] += amount;
  if (cap_[static_cast<size_t>(e ^ 1)] > 0 && ReducedCost(e ^ 1) < 0) {
    needs_repair_ = true;
  }
}

int64_t MinCostFlowGraph::TotalRoutedCost() const {
  int64_t total = 0;
  for (size_t e = 0; e < to_.size(); e += 2) {
    total += Flow(static_cast<int32_t>(e)) * cost_[e];
  }
  return total;
}

FlowInstanceShape MinCostFlowGraph::ComputeShape(int32_t s) const {
  FlowInstanceShape shape;
  shape.num_nodes = num_nodes();
  shape.num_edges = static_cast<int64_t>(num_edges());
  std::vector<int64_t> costs;
  costs.reserve(num_edges());
  for (size_t e = 0; e < to_.size(); e += 2) {
    // cap(e) + cap(e^1) is the original capacity, invariant under any flow
    // already routed, so the shape is stable across warm starts.
    const int64_t original = cap_[e] + cap_[e ^ 1];
    shape.max_capacity = std::max(shape.max_capacity, original);
    if (original == 1) ++shape.unit_capacity_edges;
    costs.push_back(cost_[e]);
  }
  // Distinct cost values — the tie-density signal ChooseFlowEngine uses to
  // decide whether blocking phases can amortize (many flow units per cost
  // class) or would degrade to one augmentation per settle.
  std::sort(costs.begin(), costs.end());
  shape.cost_classes = static_cast<int64_t>(
      std::unique(costs.begin(), costs.end()) - costs.begin());
  if (s >= 0 && s < num_nodes()) {
    for (int32_t e = head_[static_cast<size_t>(s)]; e != -1;
         e = next_[static_cast<size_t>(e)]) {
      if (cap_[static_cast<size_t>(e)] > 0) {
        shape.supply += cap_[static_cast<size_t>(e)];
      }
    }
  }
  return shape;
}

void MinCostFlowGraph::SetParallelism(ThreadPool* pool, int num_threads,
                                      int64_t min_parallel_items) {
  pool_ = pool;
  pool_threads_ = pool == nullptr ? 1 : std::max(1, num_threads);
  min_parallel_items_ = std::max<int64_t>(1, min_parallel_items);
}

void MinCostFlowGraph::CancelNegativeCycles() {
  const int32_t n = num_nodes();
  if (n == 0) return;
  while (true) {
    // Bellman-Ford from a virtual source attached to every node with a
    // zero-cost arc: dist starts at zero everywhere, so any node that still
    // relaxes after n full passes sits on (or hangs off) a negative cycle.
    std::fill(dist_.begin(), dist_.begin() + n, 0);
    std::fill(in_edge_.begin(), in_edge_.begin() + n, -1);
    int32_t relaxed = -1;
    for (int32_t round = 0; round < n; ++round) {
      relaxed = -1;
      for (size_t e = 0; e < to_.size(); ++e) {
        if (cap_[e] <= 0) continue;
        const int32_t u = to_[e ^ 1];
        const int32_t v = to_[e];
        const int64_t candidate =
            SatAdd(dist_[static_cast<size_t>(u)], cost_[e]);
        if (candidate < dist_[static_cast<size_t>(v)]) {
          dist_[static_cast<size_t>(v)] = candidate;
          in_edge_[static_cast<size_t>(v)] = static_cast<int32_t>(e);
          relaxed = v;
        }
      }
      if (relaxed < 0) return;  // Converged: no negative cycle remains.
    }
    // Walk n parent steps from the last relaxed node to land on the cycle,
    // then cancel it with its bottleneck capacity.
    int32_t x = relaxed;
    for (int32_t i = 0; i < n; ++i) {
      x = to_[static_cast<size_t>(in_edge_[static_cast<size_t>(x)] ^ 1)];
    }
    int64_t bottleneck = kInf;
    int32_t v = x;
    do {
      const int32_t e = in_edge_[static_cast<size_t>(v)];
      bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
      v = to_[static_cast<size_t>(e ^ 1)];
    } while (v != x);
    v = x;
    do {
      const int32_t e = in_edge_[static_cast<size_t>(v)];
      cap_[static_cast<size_t>(e)] -= bottleneck;
      cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
      v = to_[static_cast<size_t>(e ^ 1)];
    } while (v != x);
  }
}

void MinCostFlowGraph::RepairPotentials(int32_t /*s*/) {
  // Label-correcting fixpoint: lower potentials until every residual arc has
  // a non-negative reduced cost again. Starting from the current (almost
  // feasible) potentials this touches few nodes; it terminates because the
  // residual graph of a feasible flow built from non-negative-cost edges by
  // shortest-path augmentation or a cost-feasible warm start has no negative
  // cycle.
  queue_.clear();
  in_queue_.assign(head_.size(), 0);
  for (int32_t u = 0; u < num_nodes(); ++u) {
    queue_.push_back(u);
    in_queue_[static_cast<size_t>(u)] = 1;
  }
  const int64_t pop_limit = (static_cast<int64_t>(head_.size()) + 1) *
                            (static_cast<int64_t>(to_.size()) + 1);
  int64_t pops = 0;
  for (size_t qi = 0; qi < queue_.size(); ++qi) {
    const int32_t u = queue_[qi];
    in_queue_[static_cast<size_t>(u)] = 0;
    ++pops;
    assert(pops <= pop_limit && "negative cycle in residual network");
    if (pops > pop_limit) return;  // Defense in depth for NDEBUG builds.
    for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
         e = next_[static_cast<size_t>(e)]) {
      if (cap_[static_cast<size_t>(e)] <= 0) continue;
      const int32_t v = to_[static_cast<size_t>(e)];
      const int64_t candidate = SatAdd(potential_[static_cast<size_t>(u)],
                                       cost_[static_cast<size_t>(e)]);
      if (candidate < potential_[static_cast<size_t>(v)]) {
        potential_[static_cast<size_t>(v)] = candidate;
        if (!in_queue_[static_cast<size_t>(v)]) {
          in_queue_[static_cast<size_t>(v)] = 1;
          queue_.push_back(v);
        }
      }
    }
  }
}

void MinCostFlowGraph::RepairIfNeeded(int32_t s) {
  if (!needs_repair_) return;
  CancelNegativeCycles();
  RepairPotentials(s);
  needs_repair_ = false;
}

bool MinCostFlowGraph::DijkstraOnce(int32_t s, int32_t t) {
  ++round_;
  ++path_searches_;
  heap_.clear();
  touched_.clear();
  dist_[static_cast<size_t>(s)] = 0;
  in_edge_[static_cast<size_t>(s)] = -1;
  stamp_[static_cast<size_t>(s)] = round_;
  touched_.push_back(s);
  heap_.push_back(HeapEntry{0, s});
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    const int32_t u = top.node;
    if (top.dist != dist_[static_cast<size_t>(u)]) continue;  // Stale entry.
    if (u == t) return true;  // All closer nodes are settled and relaxed.
    for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
         e = next_[static_cast<size_t>(e)]) {
      if (cap_[static_cast<size_t>(e)] <= 0) continue;
      const int32_t v = to_[static_cast<size_t>(e)];
      const int64_t raw_rc = ReducedCost(e);
      // Once potentials have saturated at -kInf (adversarial cost ranges
      // only), clamping can understate a reduced cost by the clamped slack;
      // a genuinely negative value on sane ranges is a logic bug.
      assert(raw_rc >= 0 || potential_[static_cast<size_t>(v)] <= -kInf);
      const int64_t rc = raw_rc < 0 ? 0 : raw_rc;
      const int64_t candidate = SatAdd(top.dist, rc);
      const bool fresh = stamp_[static_cast<size_t>(v)] != round_;
      if (fresh || candidate < dist_[static_cast<size_t>(v)]) {
        dist_[static_cast<size_t>(v)] = candidate;
        in_edge_[static_cast<size_t>(v)] = e;
        if (fresh) {
          stamp_[static_cast<size_t>(v)] = round_;
          touched_.push_back(v);
        }
        heap_.push_back(HeapEntry{candidate, v});
        std::push_heap(heap_.begin(), heap_.end());
      }
    }
  }
  return false;
}

MinCostFlowGraph::Outcome MinCostFlowGraph::Solve(int32_t s, int32_t t) {
  assert(s >= 0 && s < num_nodes());
  assert(t >= 0 && t < num_nodes());
  assert(s != t);
  RepairIfNeeded(s);
  Outcome outcome;
  while (DijkstraOnce(s, t)) {
    const int64_t dist_t = dist_[static_cast<size_t>(t)];
    const int64_t path_cost = dist_t + potential_[static_cast<size_t>(t)] -
                              potential_[static_cast<size_t>(s)];
    // Advance potentials by the capped distance, shifted by -dist(t) so
    // that *untouched* nodes (conceptually at distance infinity, capped to
    // dist(t)) need no write at all. The shift is uniform across the
    // conceptual all-nodes update, so reduced costs are unaffected by it.
    // Case check for a residual arc u -> v:
    //  * both touched: min-capped labels preserve rc >= 0 because a node
    //    with label < dist(t) is settled and has relaxed its arcs;
    //  * u touched, v untouched: then dist(u) >= dist(t) (a settled u
    //    would have labelled v), so u's term is zero — rc unchanged;
    //  * u untouched, v touched: v's term is <= 0, so rc only grows.
    for (const int32_t v : touched_) {
      potential_[static_cast<size_t>(v)] =
          SatAdd(potential_[static_cast<size_t>(v)],
                 std::min(dist_[static_cast<size_t>(v)], dist_t) - dist_t);
    }
    int64_t bottleneck = kInf;
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge_[static_cast<size_t>(v)];
      bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge_[static_cast<size_t>(v)];
      cap_[static_cast<size_t>(e)] -= bottleneck;
      cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    outcome.flow += bottleneck;
    outcome.cost += bottleneck * path_cost;
  }
  return outcome;
}

MinCostFlowGraph::Outcome MinCostFlowGraph::Solve(int32_t s, int32_t t,
                                                  FlowEngine engine) {
  if (engine == FlowEngine::kAuto) {
    engine = ChooseFlowEngine(ComputeShape(s));
  }
  switch (engine) {
    case FlowEngine::kSsp:
      return Solve(s, t);
    case FlowEngine::kBlockingSsp:
      return SolveBlocking(s, t);
    case FlowEngine::kCostScaling:
      return SolveCostScaling(s, t);
    case FlowEngine::kAuto:
      break;  // Resolved above; unreachable.
  }
  return Solve(s, t);
}

// ---------------------------------------------------------------------------
// kBlockingSsp: Dijkstra phases feeding blocking flows over the admissible
// subgraph.

bool MinCostFlowGraph::DijkstraSettle(int32_t s, int32_t t) {
  ++round_;
  ++path_searches_;
  heap_.clear();
  touched_.clear();
  dist_[static_cast<size_t>(s)] = 0;
  in_edge_[static_cast<size_t>(s)] = -1;
  stamp_[static_cast<size_t>(s)] = round_;
  touched_.push_back(s);
  heap_.push_back(HeapEntry{0, s});
  int64_t dist_t = kInf;
  bool reached = false;
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    const int32_t u = top.node;
    if (top.dist != dist_[static_cast<size_t>(u)]) continue;  // Stale entry.
    // Unlike DijkstraOnce there is no early exit at t: the whole
    // dist <= dist(t) cone gets settled so that *every* shortest path is
    // admissible after the potential update, not just one. Strictly-beyond
    // labels are useless for this phase, so stop there.
    if (top.dist > dist_t) break;
    if (u == t) {
      reached = true;
      dist_t = top.dist;
    }
    for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
         e = next_[static_cast<size_t>(e)]) {
      if (cap_[static_cast<size_t>(e)] <= 0) continue;
      const int32_t v = to_[static_cast<size_t>(e)];
      const int64_t raw_rc = ReducedCost(e);
      assert(raw_rc >= 0 || potential_[static_cast<size_t>(v)] <= -kInf);
      const int64_t rc = raw_rc < 0 ? 0 : raw_rc;
      const int64_t candidate = SatAdd(top.dist, rc);
      // Labels beyond dist(t) cannot sit on a shortest s-t path; skipping
      // them keeps the settle O(cone), and the potential update's case
      // analysis covers the skipped nodes (their conceptual term is zero).
      if (candidate > dist_t) continue;
      const bool fresh = stamp_[static_cast<size_t>(v)] != round_;
      if (fresh || candidate < dist_[static_cast<size_t>(v)]) {
        dist_[static_cast<size_t>(v)] = candidate;
        in_edge_[static_cast<size_t>(v)] = e;
        if (fresh) {
          stamp_[static_cast<size_t>(v)] = round_;
          touched_.push_back(v);
        }
        heap_.push_back(HeapEntry{candidate, v});
        std::push_heap(heap_.begin(), heap_.end());
      }
    }
  }
  return reached;
}

bool MinCostFlowGraph::BuildLevels(int32_t s, int32_t t, bool admissible) {
  const size_t n = head_.size();
  if (admissible) {
    // Admissible (rc == 0) arcs out of the settled cone do not exist — the
    // potential update leaves every arc leaving it strictly positive — so
    // the BFS can only visit nodes the settle touched; resetting just those
    // keeps the phase O(cone). Stale levels elsewhere are masked by the
    // stamp check below.
    for (const int32_t v : touched_) level_[static_cast<size_t>(v)] = -1;
  } else {
    std::fill(level_.begin(),
              level_.begin() + static_cast<ptrdiff_t>(n), -1);
  }
  frontier_.clear();
  level_[static_cast<size_t>(s)] = 0;
  cur_[static_cast<size_t>(s)] = head_[static_cast<size_t>(s)];
  frontier_.push_back(s);
  const auto usable = [this, admissible](int32_t e, int32_t v) {
    if (cap_[static_cast<size_t>(e)] <= 0) return false;
    if (!admissible) return true;
    return stamp_[static_cast<size_t>(v)] == round_ && ReducedCost(e) == 0;
  };
  int32_t depth = 0;
  while (!frontier_.empty() && level_[static_cast<size_t>(t)] < 0) {
    ++depth;
    next_frontier_.clear();
    const bool parallel =
        pool_ != nullptr && pool_threads_ > 1 &&
        static_cast<int64_t>(frontier_.size()) >= min_parallel_items_;
    if (parallel) {
      // Shard the frontier into contiguous in-order slices; each shard
      // *detects* candidate nodes read-only (level_ is frozen during the
      // scan), then one serial merge in shard order assigns levels.
      // Concatenating contiguous in-order shards reproduces the serial scan
      // order exactly, and level values are a pure function of the depth,
      // so the resulting level graph — and with it the solved flow — is
      // bit-identical at any thread count.
      const size_t shards = std::min<size_t>(
          static_cast<size_t>(pool_threads_), frontier_.size());
      if (shard_buffers_.size() < shards) shard_buffers_.resize(shards);
      const size_t chunk = (frontier_.size() + shards - 1) / shards;
      const auto scan = [this, &usable, chunk](size_t shard) {
        std::vector<int32_t>& buffer = shard_buffers_[shard];
        buffer.clear();
        const size_t begin = shard * chunk;
        const size_t end = std::min(begin + chunk, frontier_.size());
        for (size_t i = begin; i < end; ++i) {
          const int32_t u = frontier_[i];
          for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
               e = next_[static_cast<size_t>(e)]) {
            const int32_t v = to_[static_cast<size_t>(e)];
            if (usable(e, v) && level_[static_cast<size_t>(v)] < 0) {
              buffer.push_back(v);
            }
          }
        }
      };
      std::vector<std::future<void>> pending;
      pending.reserve(shards - 1);
      for (size_t shard = 1; shard < shards; ++shard) {
        pending.push_back(pool_->Submit([&scan, shard] { scan(shard); }));
      }
      scan(0);
      for (std::future<void>& f : pending) f.get();
      for (size_t shard = 0; shard < shards; ++shard) {
        for (const int32_t v : shard_buffers_[shard]) {
          if (level_[static_cast<size_t>(v)] < 0) {
            level_[static_cast<size_t>(v)] = depth;
            cur_[static_cast<size_t>(v)] = head_[static_cast<size_t>(v)];
            next_frontier_.push_back(v);
          }
        }
      }
    } else {
      for (const int32_t u : frontier_) {
        for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
             e = next_[static_cast<size_t>(e)]) {
          const int32_t v = to_[static_cast<size_t>(e)];
          if (usable(e, v) && level_[static_cast<size_t>(v)] < 0) {
            level_[static_cast<size_t>(v)] = depth;
            cur_[static_cast<size_t>(v)] = head_[static_cast<size_t>(v)];
            next_frontier_.push_back(v);
          }
        }
      }
    }
    frontier_.swap(next_frontier_);
  }
  return level_[static_cast<size_t>(t)] >= 0;
}

int64_t MinCostFlowGraph::BlockingAugment(int32_t s, int32_t t,
                                          bool admissible) {
  // Iterative DFS with per-node arc cursors (cur_): every arc is retired at
  // most once per blocking flow, so one call is O(V * paths + E).
  int64_t total = 0;
  path_.clear();
  int32_t u = s;
  while (true) {
    if (u == t) {
      int64_t bottleneck = kInf;
      for (const int32_t e : path_) {
        bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
      }
      for (const int32_t e : path_) {
        cap_[static_cast<size_t>(e)] -= bottleneck;
        cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
      }
      total += bottleneck;
      // Retreat to just before the first saturated arc and keep going.
      size_t keep = 0;
      while (keep < path_.size() &&
             cap_[static_cast<size_t>(path_[keep])] > 0) {
        ++keep;
      }
      path_.resize(keep);
      u = path_.empty() ? s : to_[static_cast<size_t>(path_.back())];
      continue;
    }
    int32_t e = cur_[static_cast<size_t>(u)];
    while (e != -1) {
      const int32_t v = to_[static_cast<size_t>(e)];
      if (cap_[static_cast<size_t>(e)] > 0 &&
          (!admissible || (stamp_[static_cast<size_t>(v)] == round_ &&
                           ReducedCost(e) == 0)) &&
          level_[static_cast<size_t>(v)] ==
              level_[static_cast<size_t>(u)] + 1) {
        break;
      }
      e = next_[static_cast<size_t>(e)];
    }
    cur_[static_cast<size_t>(u)] = e;
    if (e == -1) {
      if (u == s) break;  // Source exhausted: the flow is blocking.
      // Dead end: retreat one arc and retire it in the parent's cursor so
      // the DFS never re-enters this exhausted node.
      const int32_t back = path_.back();
      path_.pop_back();
      const int32_t parent =
          path_.empty() ? s : to_[static_cast<size_t>(path_.back())];
      cur_[static_cast<size_t>(parent)] = next_[static_cast<size_t>(back)];
      u = parent;
    } else {
      path_.push_back(e);
      u = to_[static_cast<size_t>(e)];
    }
  }
  return total;
}

MinCostFlowGraph::Outcome MinCostFlowGraph::SolveBlocking(int32_t s,
                                                          int32_t t) {
  assert(s >= 0 && s < num_nodes());
  assert(t >= 0 && t < num_nodes());
  assert(s != t);
  RepairIfNeeded(s);
  if (level_.size() < head_.size()) {
    level_.resize(head_.size(), -1);
    cur_.resize(head_.size(), -1);
  }
  Outcome outcome;
  while (DijkstraSettle(s, t)) {
    ++blocking_phases_;
    const int64_t dist_t = dist_[static_cast<size_t>(t)];
    // Per-unit cost of every path in this phase, taken before the update
    // (equal to pi'(t) - pi'(s) afterwards).
    const int64_t path_cost = dist_t + potential_[static_cast<size_t>(t)] -
                              potential_[static_cast<size_t>(s)];
    // Same capped-shifted update (and case analysis) as Solve(); after it
    // every shortest-path arc has reduced cost exactly zero, so the
    // admissible subgraph carries *all* shortest s-t paths at once.
    for (const int32_t v : touched_) {
      potential_[static_cast<size_t>(v)] =
          SatAdd(potential_[static_cast<size_t>(v)],
                 std::min(dist_[static_cast<size_t>(v)], dist_t) - dist_t);
    }
    // Augmenting on zero-reduced-cost arcs exposes their (also
    // zero-reduced-cost) reverses, which can open further shortest paths of
    // the same per-unit cost, so the inner loop re-levels until t is
    // unreachable in the admissible subgraph — i.e. the phase flow is a max
    // flow of the shortest-path subnetwork (Dinic's bound: level(t)
    // strictly increases per iteration).
    int64_t phase_flow = 0;
    while (BuildLevels(s, t, /*admissible=*/true)) {
      const int64_t pushed = BlockingAugment(s, t, /*admissible=*/true);
      assert(pushed > 0);
      if (pushed <= 0) break;  // Defense in depth for NDEBUG builds.
      phase_flow += pushed;
      outcome.flow += pushed;
      outcome.cost += pushed * path_cost;
    }
    if (phase_flow == 0) {
      // Only reachable once labels have saturated at the ±kInf rails
      // (adversarial cost ranges): clamping slack can leave tree arcs with
      // rc != 0, emptying the admissible subgraph. Fall back to augmenting
      // the settle tree's t-path directly so the flow still reaches its
      // maximum and the outer loop keeps making progress.
      int64_t bottleneck = kInf;
      for (int32_t v = t; v != s;) {
        const int32_t e = in_edge_[static_cast<size_t>(v)];
        bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
        v = to_[static_cast<size_t>(e ^ 1)];
      }
      for (int32_t v = t; v != s;) {
        const int32_t e = in_edge_[static_cast<size_t>(v)];
        cap_[static_cast<size_t>(e)] -= bottleneck;
        cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
        v = to_[static_cast<size_t>(e ^ 1)];
      }
      outcome.flow += bottleneck;
      outcome.cost += bottleneck * path_cost;
    }
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// kCostScaling: max flow first, then Goldberg-Tarjan eps-scaling refine.

int64_t MinCostFlowGraph::MaxFlowDinic(int32_t s, int32_t t) {
  int64_t total = 0;
  while (BuildLevels(s, t, /*admissible=*/false)) {
    total += BlockingAugment(s, t, /*admissible=*/false);
  }
  return total;
}

void MinCostFlowGraph::Refine(int64_t eps, int64_t scale) {
  ++refine_rounds_;
  const int32_t n = num_nodes();
  const auto scaled_rc = [this, scale](int32_t e) {
    const int32_t u = to_[static_cast<size_t>(e ^ 1)];
    const int32_t v = to_[static_cast<size_t>(e)];
    // In range by the caller's overflow budget: |cost * scale| and the
    // price bound both sit far below kInf (see SolveCostScaling).
    return cost_[static_cast<size_t>(e)] * scale +
           price_[static_cast<size_t>(u)] - price_[static_cast<size_t>(v)];
  };

  // Step 1: saturate every residual arc whose scaled reduced cost is
  // negative; afterwards every residual arc has rc >= 0 >= -eps, so the
  // pseudoflow is eps-optimal and only the node excesses are wrong.
  // Detection is read-only over frozen prices (an arc and its reverse are
  // never both negative, so applying one detected arc cannot change
  // another's detection) — shard it in contiguous in-order arc ranges and
  // apply serially in ascending arc order, which both equals the serial
  // single pass and is thread-count invariant.
  saturate_.clear();
  const int32_t arc_count = static_cast<int32_t>(to_.size());
  const bool parallel = pool_ != nullptr && pool_threads_ > 1 &&
                        static_cast<int64_t>(arc_count) >= min_parallel_items_;
  if (parallel) {
    const size_t shards = static_cast<size_t>(pool_threads_);
    if (shard_buffers_.size() < shards) shard_buffers_.resize(shards);
    const int32_t chunk =
        (arc_count + static_cast<int32_t>(shards) - 1) /
        static_cast<int32_t>(shards);
    const auto scan = [this, &scaled_rc, chunk, arc_count](size_t shard) {
      std::vector<int32_t>& buffer = shard_buffers_[shard];
      buffer.clear();
      const int32_t begin = static_cast<int32_t>(shard) * chunk;
      const int32_t end = std::min(begin + chunk, arc_count);
      for (int32_t e = begin; e < end; ++e) {
        if (cap_[static_cast<size_t>(e)] > 0 && scaled_rc(e) < 0) {
          buffer.push_back(e);
        }
      }
    };
    std::vector<std::future<void>> pending;
    pending.reserve(shards - 1);
    for (size_t shard = 1; shard < shards; ++shard) {
      pending.push_back(pool_->Submit([&scan, shard] { scan(shard); }));
    }
    scan(0);
    for (std::future<void>& f : pending) f.get();
    for (size_t shard = 0; shard < shards; ++shard) {
      saturate_.insert(saturate_.end(), shard_buffers_[shard].begin(),
                       shard_buffers_[shard].end());
    }
  } else {
    for (int32_t e = 0; e < arc_count; ++e) {
      if (cap_[static_cast<size_t>(e)] > 0 && scaled_rc(e) < 0) {
        saturate_.push_back(e);
      }
    }
  }
  for (const int32_t e : saturate_) {
    const int32_t u = to_[static_cast<size_t>(e ^ 1)];
    const int32_t v = to_[static_cast<size_t>(e)];
    const int64_t c = cap_[static_cast<size_t>(e)];
    cap_[static_cast<size_t>(e)] = 0;
    cap_[static_cast<size_t>(e ^ 1)] += c;
    excess_[static_cast<size_t>(u)] -= c;
    excess_[static_cast<size_t>(v)] += c;
  }

  // Step 2: FIFO push-relabel discharge. excess_ tracks divergence
  // *changes* (it starts and ends all-zero), so s and t need no special
  // casing and the flow value is preserved exactly. Pushes go over
  // admissible (rc < 0) arcs; an exhausted node is relabelled to the
  // highest price that re-admits an arc, minus eps — prices only fall,
  // which bounds the work (Goldberg-Tarjan).
  queue_.clear();
  in_queue_.assign(head_.size(), 0);
  for (int32_t u = 0; u < n; ++u) {
    if (excess_[static_cast<size_t>(u)] > 0) {
      queue_.push_back(u);
      in_queue_[static_cast<size_t>(u)] = 1;
      cur_[static_cast<size_t>(u)] = head_[static_cast<size_t>(u)];
    }
  }
  size_t qhead = 0;
  while (qhead < queue_.size()) {
    const int32_t u = queue_[qhead++];
    if (qhead >= 4096 && qhead * 2 >= queue_.size()) {
      // Compact the drained prefix so the FIFO stays bounded by the live
      // set instead of the total number of activations.
      queue_.erase(queue_.begin(), queue_.begin() + static_cast<ptrdiff_t>(qhead));
      qhead = 0;
    }
    in_queue_[static_cast<size_t>(u)] = 0;
    while (excess_[static_cast<size_t>(u)] > 0) {
      int32_t e = cur_[static_cast<size_t>(u)];
      while (e != -1) {
        if (cap_[static_cast<size_t>(e)] > 0 && scaled_rc(e) < 0) break;
        e = next_[static_cast<size_t>(e)];
      }
      cur_[static_cast<size_t>(u)] = e;
      if (e == -1) {
        // Relabel: a node with positive excess always has a residual arc
        // (its excess can reach a deficit through the residual network of
        // the underlying feasible flow).
        int64_t best = 0;
        bool has_residual = false;
        for (int32_t e2 = head_[static_cast<size_t>(u)]; e2 != -1;
             e2 = next_[static_cast<size_t>(e2)]) {
          if (cap_[static_cast<size_t>(e2)] <= 0) continue;
          const int64_t candidate =
              price_[static_cast<size_t>(to_[static_cast<size_t>(e2)])] -
              cost_[static_cast<size_t>(e2)] * scale;
          if (!has_residual || candidate > best) {
            best = candidate;
            has_residual = true;
          }
        }
        assert(has_residual && "stranded excess in cost-scaling refine");
        if (!has_residual) break;  // Defense in depth for NDEBUG builds.
        price_[static_cast<size_t>(u)] = best - eps;
        cur_[static_cast<size_t>(u)] = head_[static_cast<size_t>(u)];
        continue;
      }
      const int32_t v = to_[static_cast<size_t>(e)];
      const int64_t amount =
          std::min(excess_[static_cast<size_t>(u)],
                   cap_[static_cast<size_t>(e)]);
      cap_[static_cast<size_t>(e)] -= amount;
      cap_[static_cast<size_t>(e ^ 1)] += amount;
      excess_[static_cast<size_t>(u)] -= amount;
      excess_[static_cast<size_t>(v)] += amount;
      if (excess_[static_cast<size_t>(v)] > 0 &&
          !in_queue_[static_cast<size_t>(v)]) {
        in_queue_[static_cast<size_t>(v)] = 1;
        queue_.push_back(v);
        cur_[static_cast<size_t>(v)] = head_[static_cast<size_t>(v)];
      }
    }
  }
}

MinCostFlowGraph::Outcome MinCostFlowGraph::SolveCostScaling(int32_t s,
                                                             int32_t t) {
  assert(s >= 0 && s < num_nodes());
  assert(t >= 0 && t < num_nodes());
  assert(s != t);
  const int64_t scale = static_cast<int64_t>(num_nodes()) + 1;
  int64_t max_cost = 0;
  for (size_t e = 0; e < to_.size(); e += 2) {
    max_cost = std::max(max_cost, cost_[e]);
  }
  // Overflow budget: prices drop by at most ~3n * eps per refine round and
  // eps starts at max_cost * scale, so every scaled reduced cost stays
  // within a small multiple of scale * max_cost * n. Keeping that far below
  // kInf needs max_cost <= kInf / (16 * scale^2); otherwise the blocking
  // engine — whose label arithmetic saturates — handles the instance.
  const int64_t cost_budget = ((kInf / 16) / scale) / scale;
  if (max_cost > cost_budget) {
    ++cost_scaling_fallbacks_;
    return SolveBlocking(s, t);
  }
  if (level_.size() < head_.size()) {
    level_.resize(head_.size(), -1);
    cur_.resize(head_.size(), -1);
  }
  // Warm-started flow (even one that broke the SSP potentials) is simply
  // part of the pseudoflow refine re-optimizes, so no entry repair is
  // needed and no negative-cycle cancellation either.
  const int64_t cost_before = TotalRoutedCost();
  const int64_t added_flow = MaxFlowDinic(s, t);
  price_.assign(head_.size(), 0);
  excess_.assign(head_.size(), 0);
  // Scaled costs are multiples of scale = n + 1, so a 1-optimal flow has no
  // residual cycle cheaper than -n > -scale — i.e. none at all: eps = 1
  // certifies exact optimality. Start at the trivial bound (the zero-price
  // flow is (max_cost * scale)-optimal) and divide by 8 per round.
  int64_t eps = max_cost * scale;
  while (eps > 1) {
    eps = std::max<int64_t>(1, eps / 8);
    Refine(eps, scale);
  }
  // Prices are not Johnson potentials; a later potential-based Solve must
  // rebuild its invariant first.
  needs_repair_ = true;
  Outcome outcome;
  outcome.flow = added_flow;
  // Refine may also re-route flow carried into this call, so the call's
  // cost contribution is the network-wide delta (equal to the full routed
  // cost on a fresh instance).
  outcome.cost = TotalRoutedCost() - cost_before;
  return outcome;
}

MinCostFlowGraph::Outcome MinCostFlowGraph::SolveSpfa(int32_t s, int32_t t) {
  Outcome outcome;
  const size_t n = head_.size();
  std::vector<int64_t> dist(n);
  std::vector<int32_t> in_edge(n);
  std::vector<bool> in_queue(n);

  while (true) {
    // SPFA shortest path by cost in the residual network (handles the
    // negative residual costs of reversed edges).
    ++path_searches_;
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(in_edge.begin(), in_edge.end(), -1);
    std::fill(in_queue.begin(), in_queue.end(), false);
    std::deque<int32_t> queue;
    dist[static_cast<size_t>(s)] = 0;
    queue.push_back(s);
    in_queue[static_cast<size_t>(s)] = true;
    while (!queue.empty()) {
      const int32_t u = queue.front();
      queue.pop_front();
      in_queue[static_cast<size_t>(u)] = false;
      for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
           e = next_[static_cast<size_t>(e)]) {
        if (cap_[static_cast<size_t>(e)] <= 0) continue;
        const int32_t v = to_[static_cast<size_t>(e)];
        // Saturating: a kInf-seeded dist plus a near-limit cost pins at
        // kInf (and fails the `< dist` test) instead of wrapping negative
        // and corrupting the search.
        const int64_t candidate =
            SatAdd(dist[static_cast<size_t>(u)], cost_[static_cast<size_t>(e)]);
        if (candidate < dist[static_cast<size_t>(v)]) {
          dist[static_cast<size_t>(v)] = candidate;
          in_edge[static_cast<size_t>(v)] = e;
          if (!in_queue[static_cast<size_t>(v)]) {
            in_queue[static_cast<size_t>(v)] = true;
            // SLF heuristic: push closer nodes to the front.
            if (!queue.empty() &&
                dist[static_cast<size_t>(v)] <
                    dist[static_cast<size_t>(queue.front())]) {
              queue.push_front(v);
            } else {
              queue.push_back(v);
            }
          }
        }
      }
    }
    if (dist[static_cast<size_t>(t)] >= kInf) break;

    // Find the bottleneck along the shortest path, then augment.
    int64_t bottleneck = kInf;
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge[static_cast<size_t>(v)];
      bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge[static_cast<size_t>(v)];
      cap_[static_cast<size_t>(e)] -= bottleneck;
      cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    outcome.flow += bottleneck;
    outcome.cost += bottleneck * dist[static_cast<size_t>(t)];
  }
  // SPFA does not maintain potentials; a subsequent Solve() must rebuild
  // them before trusting Dijkstra.
  needs_repair_ = true;
  return outcome;
}

}  // namespace ftoa
