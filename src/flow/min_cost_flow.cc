#include "flow/min_cost_flow.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace ftoa {

namespace {
constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
}  // namespace

MinCostFlowGraph::MinCostFlowGraph(int32_t num_nodes) { Reset(num_nodes); }

void MinCostFlowGraph::Reset(int32_t num_nodes) {
  head_.assign(static_cast<size_t>(num_nodes), -1);
  next_.clear();
  to_.clear();
  cap_.clear();
  cost_.clear();
  potential_.assign(static_cast<size_t>(num_nodes), 0);
  stamp_.assign(static_cast<size_t>(num_nodes), 0);
  round_ = 0;
  needs_repair_ = false;
  // dist_/in_edge_ are stamped, heap_/touched_/queue_ cleared per use; they
  // only ever need to be at least num_nodes long.
  if (dist_.size() < static_cast<size_t>(num_nodes)) {
    dist_.resize(static_cast<size_t>(num_nodes));
    in_edge_.resize(static_cast<size_t>(num_nodes));
  }
}

void MinCostFlowGraph::ReserveEdges(size_t num_edges) {
  to_.reserve(num_edges * 2);
  cap_.reserve(num_edges * 2);
  cost_.reserve(num_edges * 2);
  next_.reserve(num_edges * 2);
}

int32_t MinCostFlowGraph::AddNode() {
  const int32_t id = num_nodes();
  head_.push_back(-1);
  potential_.push_back(0);
  stamp_.push_back(0);
  if (dist_.size() < head_.size()) {
    dist_.push_back(0);
    in_edge_.push_back(-1);
  }
  return id;
}

int64_t MinCostFlowGraph::ReducedCost(int32_t e) const {
  const int32_t u = to_[static_cast<size_t>(e ^ 1)];
  const int32_t v = to_[static_cast<size_t>(e)];
  return cost_[static_cast<size_t>(e)] + potential_[static_cast<size_t>(u)] -
         potential_[static_cast<size_t>(v)];
}

int32_t MinCostFlowGraph::AddEdge(int32_t u, int32_t v, int64_t cap,
                                  int64_t cost) {
  assert(u >= 0 && u < num_nodes());
  assert(v >= 0 && v < num_nodes());
  assert(cap >= 0);
  assert(cost >= 0);
  const int32_t forward = static_cast<int32_t>(to_.size());
  to_.push_back(v);
  cap_.push_back(cap);
  cost_.push_back(cost);
  next_.push_back(head_[static_cast<size_t>(u)]);
  head_[static_cast<size_t>(u)] = forward;

  to_.push_back(u);
  cap_.push_back(0);
  cost_.push_back(-cost);
  next_.push_back(head_[static_cast<size_t>(v)]);
  head_[static_cast<size_t>(v)] = forward + 1;

  // An edge appended after earlier Solve rounds can undercut the current
  // potential gap; flag for repair instead of re-running Bellman-Ford now.
  if (cap > 0 && ReducedCost(forward) < 0) needs_repair_ = true;
  return forward;
}

void MinCostFlowGraph::PushFlow(int32_t e, int64_t amount) {
  assert(e >= 0 && static_cast<size_t>(e) < to_.size());
  assert(amount >= 0 && amount <= cap_[static_cast<size_t>(e)]);
  cap_[static_cast<size_t>(e)] -= amount;
  cap_[static_cast<size_t>(e ^ 1)] += amount;
  if (cap_[static_cast<size_t>(e ^ 1)] > 0 && ReducedCost(e ^ 1) < 0) {
    needs_repair_ = true;
  }
}

int64_t MinCostFlowGraph::TotalRoutedCost() const {
  int64_t total = 0;
  for (size_t e = 0; e < to_.size(); e += 2) {
    total += Flow(static_cast<int32_t>(e)) * cost_[e];
  }
  return total;
}

void MinCostFlowGraph::CancelNegativeCycles() {
  const int32_t n = num_nodes();
  if (n == 0) return;
  while (true) {
    // Bellman-Ford from a virtual source attached to every node with a
    // zero-cost arc: dist starts at zero everywhere, so any node that still
    // relaxes after n full passes sits on (or hangs off) a negative cycle.
    std::fill(dist_.begin(), dist_.begin() + n, 0);
    std::fill(in_edge_.begin(), in_edge_.begin() + n, -1);
    int32_t relaxed = -1;
    for (int32_t round = 0; round < n; ++round) {
      relaxed = -1;
      for (size_t e = 0; e < to_.size(); ++e) {
        if (cap_[e] <= 0) continue;
        const int32_t u = to_[e ^ 1];
        const int32_t v = to_[e];
        const int64_t candidate = dist_[static_cast<size_t>(u)] + cost_[e];
        if (candidate < dist_[static_cast<size_t>(v)]) {
          dist_[static_cast<size_t>(v)] = candidate;
          in_edge_[static_cast<size_t>(v)] = static_cast<int32_t>(e);
          relaxed = v;
        }
      }
      if (relaxed < 0) return;  // Converged: no negative cycle remains.
    }
    // Walk n parent steps from the last relaxed node to land on the cycle,
    // then cancel it with its bottleneck capacity.
    int32_t x = relaxed;
    for (int32_t i = 0; i < n; ++i) {
      x = to_[static_cast<size_t>(in_edge_[static_cast<size_t>(x)] ^ 1)];
    }
    int64_t bottleneck = kInf;
    int32_t v = x;
    do {
      const int32_t e = in_edge_[static_cast<size_t>(v)];
      bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
      v = to_[static_cast<size_t>(e ^ 1)];
    } while (v != x);
    v = x;
    do {
      const int32_t e = in_edge_[static_cast<size_t>(v)];
      cap_[static_cast<size_t>(e)] -= bottleneck;
      cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
      v = to_[static_cast<size_t>(e ^ 1)];
    } while (v != x);
  }
}

void MinCostFlowGraph::RepairPotentials(int32_t /*s*/) {
  // Label-correcting fixpoint: lower potentials until every residual arc has
  // a non-negative reduced cost again. Starting from the current (almost
  // feasible) potentials this touches few nodes; it terminates because the
  // residual graph of a feasible flow built from non-negative-cost edges by
  // shortest-path augmentation or a cost-feasible warm start has no negative
  // cycle.
  queue_.clear();
  in_queue_.assign(head_.size(), 0);
  for (int32_t u = 0; u < num_nodes(); ++u) {
    queue_.push_back(u);
    in_queue_[static_cast<size_t>(u)] = 1;
  }
  const int64_t pop_limit =
      (static_cast<int64_t>(head_.size()) + 1) *
      (static_cast<int64_t>(to_.size()) + 1);
  int64_t pops = 0;
  for (size_t qi = 0; qi < queue_.size(); ++qi) {
    const int32_t u = queue_[qi];
    in_queue_[static_cast<size_t>(u)] = 0;
    ++pops;
    assert(pops <= pop_limit && "negative cycle in residual network");
    if (pops > pop_limit) return;  // Defense in depth for NDEBUG builds.
    for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
         e = next_[static_cast<size_t>(e)]) {
      if (cap_[static_cast<size_t>(e)] <= 0) continue;
      const int32_t v = to_[static_cast<size_t>(e)];
      const int64_t candidate = potential_[static_cast<size_t>(u)] +
                                cost_[static_cast<size_t>(e)];
      if (candidate < potential_[static_cast<size_t>(v)]) {
        potential_[static_cast<size_t>(v)] = candidate;
        if (!in_queue_[static_cast<size_t>(v)]) {
          in_queue_[static_cast<size_t>(v)] = 1;
          queue_.push_back(v);
        }
      }
    }
  }
}

bool MinCostFlowGraph::DijkstraOnce(int32_t s, int32_t t) {
  ++round_;
  ++path_searches_;
  heap_.clear();
  touched_.clear();
  dist_[static_cast<size_t>(s)] = 0;
  in_edge_[static_cast<size_t>(s)] = -1;
  stamp_[static_cast<size_t>(s)] = round_;
  touched_.push_back(s);
  heap_.push_back(HeapEntry{0, s});
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end());
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    const int32_t u = top.node;
    if (top.dist != dist_[static_cast<size_t>(u)]) continue;  // Stale entry.
    if (u == t) return true;  // All closer nodes are settled and relaxed.
    for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
         e = next_[static_cast<size_t>(e)]) {
      if (cap_[static_cast<size_t>(e)] <= 0) continue;
      const int32_t v = to_[static_cast<size_t>(e)];
      const int64_t rc = ReducedCost(e);
      assert(rc >= 0 && "potentials invariant violated");
      const int64_t candidate = top.dist + rc;
      const bool fresh = stamp_[static_cast<size_t>(v)] != round_;
      if (fresh || candidate < dist_[static_cast<size_t>(v)]) {
        dist_[static_cast<size_t>(v)] = candidate;
        in_edge_[static_cast<size_t>(v)] = e;
        if (fresh) {
          stamp_[static_cast<size_t>(v)] = round_;
          touched_.push_back(v);
        }
        heap_.push_back(HeapEntry{candidate, v});
        std::push_heap(heap_.begin(), heap_.end());
      }
    }
  }
  return false;
}

MinCostFlowGraph::Outcome MinCostFlowGraph::Solve(int32_t s, int32_t t) {
  assert(s >= 0 && s < num_nodes());
  assert(t >= 0 && t < num_nodes());
  assert(s != t);
  if (needs_repair_) {
    CancelNegativeCycles();
    RepairPotentials(s);
    needs_repair_ = false;
  }
  Outcome outcome;
  while (DijkstraOnce(s, t)) {
    const int64_t dist_t = dist_[static_cast<size_t>(t)];
    const int64_t path_cost = dist_t + potential_[static_cast<size_t>(t)] -
                              potential_[static_cast<size_t>(s)];
    // Advance potentials by the capped distance, shifted by -dist(t) so
    // that *untouched* nodes (conceptually at distance infinity, capped to
    // dist(t)) need no write at all. The shift is uniform across the
    // conceptual all-nodes update, so reduced costs are unaffected by it.
    // Case check for a residual arc u -> v:
    //  * both touched: min-capped labels preserve rc >= 0 because a node
    //    with label < dist(t) is settled and has relaxed its arcs;
    //  * u touched, v untouched: then dist(u) >= dist(t) (a settled u
    //    would have labelled v), so u's term is zero — rc unchanged;
    //  * u untouched, v touched: v's term is <= 0, so rc only grows.
    for (const int32_t v : touched_) {
      potential_[static_cast<size_t>(v)] +=
          std::min(dist_[static_cast<size_t>(v)], dist_t) - dist_t;
    }
    int64_t bottleneck = kInf;
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge_[static_cast<size_t>(v)];
      bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge_[static_cast<size_t>(v)];
      cap_[static_cast<size_t>(e)] -= bottleneck;
      cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    outcome.flow += bottleneck;
    outcome.cost += bottleneck * path_cost;
  }
  return outcome;
}

MinCostFlowGraph::Outcome MinCostFlowGraph::SolveSpfa(int32_t s, int32_t t) {
  Outcome outcome;
  const size_t n = head_.size();
  std::vector<int64_t> dist(n);
  std::vector<int32_t> in_edge(n);
  std::vector<bool> in_queue(n);

  while (true) {
    // SPFA shortest path by cost in the residual network (handles the
    // negative residual costs of reversed edges).
    ++path_searches_;
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(in_edge.begin(), in_edge.end(), -1);
    std::fill(in_queue.begin(), in_queue.end(), false);
    std::deque<int32_t> queue;
    dist[static_cast<size_t>(s)] = 0;
    queue.push_back(s);
    in_queue[static_cast<size_t>(s)] = true;
    while (!queue.empty()) {
      const int32_t u = queue.front();
      queue.pop_front();
      in_queue[static_cast<size_t>(u)] = false;
      for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
           e = next_[static_cast<size_t>(e)]) {
        if (cap_[static_cast<size_t>(e)] <= 0) continue;
        const int32_t v = to_[static_cast<size_t>(e)];
        const int64_t candidate =
            dist[static_cast<size_t>(u)] + cost_[static_cast<size_t>(e)];
        if (candidate < dist[static_cast<size_t>(v)]) {
          dist[static_cast<size_t>(v)] = candidate;
          in_edge[static_cast<size_t>(v)] = e;
          if (!in_queue[static_cast<size_t>(v)]) {
            in_queue[static_cast<size_t>(v)] = true;
            // SLF heuristic: push closer nodes to the front.
            if (!queue.empty() &&
                dist[static_cast<size_t>(v)] <
                    dist[static_cast<size_t>(queue.front())]) {
              queue.push_front(v);
            } else {
              queue.push_back(v);
            }
          }
        }
      }
    }
    if (dist[static_cast<size_t>(t)] >= kInf) break;

    // Find the bottleneck along the shortest path, then augment.
    int64_t bottleneck = kInf;
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge[static_cast<size_t>(v)];
      bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge[static_cast<size_t>(v)];
      cap_[static_cast<size_t>(e)] -= bottleneck;
      cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    outcome.flow += bottleneck;
    outcome.cost += bottleneck * dist[static_cast<size_t>(t)];
  }
  // SPFA does not maintain potentials; a subsequent Solve() must rebuild
  // them before trusting Dijkstra.
  needs_repair_ = true;
  return outcome;
}

}  // namespace ftoa
