#include "flow/min_cost_flow.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

namespace ftoa {

namespace {
constexpr int64_t kInf = std::numeric_limits<int64_t>::max() / 4;
}  // namespace

MinCostFlowGraph::MinCostFlowGraph(int32_t num_nodes)
    : head_(static_cast<size_t>(num_nodes), -1) {}

int32_t MinCostFlowGraph::AddEdge(int32_t u, int32_t v, int64_t cap,
                                  int64_t cost) {
  assert(cap >= 0);
  const int32_t forward = static_cast<int32_t>(to_.size());
  to_.push_back(v);
  cap_.push_back(cap);
  cost_.push_back(cost);
  next_.push_back(head_[static_cast<size_t>(u)]);
  head_[static_cast<size_t>(u)] = forward;

  to_.push_back(u);
  cap_.push_back(0);
  cost_.push_back(-cost);
  next_.push_back(head_[static_cast<size_t>(v)]);
  head_[static_cast<size_t>(v)] = forward + 1;
  return forward;
}

MinCostFlowGraph::Outcome MinCostFlowGraph::Solve(int32_t s, int32_t t) {
  Outcome outcome;
  const size_t n = head_.size();
  std::vector<int64_t> dist(n);
  std::vector<int32_t> in_edge(n);
  std::vector<bool> in_queue(n);

  while (true) {
    // SPFA shortest path by cost in the residual network (handles the
    // negative residual costs of reversed edges).
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(in_edge.begin(), in_edge.end(), -1);
    std::fill(in_queue.begin(), in_queue.end(), false);
    std::deque<int32_t> queue;
    dist[static_cast<size_t>(s)] = 0;
    queue.push_back(s);
    in_queue[static_cast<size_t>(s)] = true;
    while (!queue.empty()) {
      const int32_t u = queue.front();
      queue.pop_front();
      in_queue[static_cast<size_t>(u)] = false;
      for (int32_t e = head_[static_cast<size_t>(u)]; e != -1;
           e = next_[static_cast<size_t>(e)]) {
        if (cap_[static_cast<size_t>(e)] <= 0) continue;
        const int32_t v = to_[static_cast<size_t>(e)];
        const int64_t candidate =
            dist[static_cast<size_t>(u)] + cost_[static_cast<size_t>(e)];
        if (candidate < dist[static_cast<size_t>(v)]) {
          dist[static_cast<size_t>(v)] = candidate;
          in_edge[static_cast<size_t>(v)] = e;
          if (!in_queue[static_cast<size_t>(v)]) {
            in_queue[static_cast<size_t>(v)] = true;
            // SLF heuristic: push closer nodes to the front.
            if (!queue.empty() &&
                dist[static_cast<size_t>(v)] <
                    dist[static_cast<size_t>(queue.front())]) {
              queue.push_front(v);
            } else {
              queue.push_back(v);
            }
          }
        }
      }
    }
    if (dist[static_cast<size_t>(t)] >= kInf) break;

    // Find the bottleneck along the shortest path, then augment.
    int64_t bottleneck = kInf;
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge[static_cast<size_t>(v)];
      bottleneck = std::min(bottleneck, cap_[static_cast<size_t>(e)]);
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    for (int32_t v = t; v != s;) {
      const int32_t e = in_edge[static_cast<size_t>(v)];
      cap_[static_cast<size_t>(e)] -= bottleneck;
      cap_[static_cast<size_t>(e ^ 1)] += bottleneck;
      v = to_[static_cast<size_t>(e ^ 1)];
    }
    outcome.flow += bottleneck;
    outcome.cost += bottleneck * dist[static_cast<size_t>(t)];
  }
  return outcome;
}

}  // namespace ftoa
