// LoopedTraceSource: the unbounded arrival stream behind the serving
// harness (serve/service_harness). A finite multi-day city trace
// (gen/city_trace) is replayed day after day on an absolute time axis —
// stream day d maps to source day d % loop_days, its day-relative arrival
// times shifted by d * day_horizon — so a soak can run for an arbitrary
// number of simulated days from a fixed seed, optionally scaled up or down
// without touching the city's spatial shape. For finite-equivalence tests
// the same days can be materialized as one long Instance whose replay is
// the ground truth an evicting harness must reproduce bit for bit.

#ifndef FTOA_GEN_LOOPED_TRACE_H_
#define FTOA_GEN_LOOPED_TRACE_H_

#include <cstdint>
#include <vector>

#include "gen/city_trace.h"
#include "gen/config.h"
#include "model/arrival_stream.h"
#include "model/instance.h"
#include "spatial/point.h"
#include "util/result.h"

namespace ftoa {

/// One arrival of the unbounded stream. Unlike ArrivalEvent — an index
/// into a fixed Instance universe — a StreamArrival is self-contained:
/// the harness builds its own per-segment universes from these.
struct StreamArrival {
  ObjectKind kind = ObjectKind::kWorker;
  double time = 0.0;      ///< Absolute stream time (day * day_horizon + Sw/Sr).
  Point location;         ///< Initial location within the city region.
  double duration = 0.0;  ///< Dw (workers) or Dr (tasks).
  int32_t source_id = -1; ///< Object id within the source day's instance.
  int64_t day = 0;        ///< Absolute stream day the arrival belongs to.

  /// Last time the object can still participate in a match.
  double Deadline() const { return time + duration; }
};

/// Deterministic unbounded replay of a city trace.
class LoopedTraceSource {
 public:
  struct Options {
    /// Days replayed cyclically; 0 = the profile's full history_days.
    /// Clamped to [1, profile.history_days].
    int loop_days = 0;
    /// Multiplier on both sides' per-day object counts (soak scaling;
    /// applied to the profile before the generator is built, so spatial
    /// and temporal shape are unchanged). Clamped to > 0.
    double scale = 1.0;
  };

  explicit LoopedTraceSource(CityProfile profile);
  LoopedTraceSource(CityProfile profile, Options options);

  const CityTraceGenerator& generator() const { return generator_; }
  int loop_days() const { return loop_days_; }

  /// Duration of one stream day (== slots_per_day; one slot = one unit).
  double day_horizon() const;

  /// The (slot x cell) type space of any single day.
  SpacetimeSpec DaySpacetime() const { return generator_.DaySpacetime(); }

  /// Arrivals of absolute stream day `day` (any day >= 0), on the absolute
  /// time axis, sorted by the session arrival contract (nondecreasing
  /// time; at ties workers before tasks, then lower source id).
  Result<std::vector<StreamArrival>> ArrivalsForDay(int64_t day) const;

  /// The first `num_days` stream days concatenated into one Instance over
  /// an extended horizon (num_days * slots_per_day slots, same grid) —
  /// the finite ground truth for harness-equivalence tests. Object ids
  /// are assigned in (day, source id) order per side.
  Result<Instance> FiniteInstance(int num_days) const;

 private:
  CityTraceGenerator generator_;
  int loop_days_ = 1;
};

}  // namespace ftoa

#endif  // FTOA_GEN_LOOPED_TRACE_H_
