#include "gen/config.h"

namespace ftoa {

Status SyntheticConfig::Validate() const {
  if (num_workers < 0 || num_tasks < 0) {
    return Status::InvalidArgument("SyntheticConfig: negative object count");
  }
  if (grid_x <= 0 || grid_y <= 0) {
    return Status::InvalidArgument("SyntheticConfig: non-positive grid");
  }
  if (num_slots <= 0) {
    return Status::InvalidArgument("SyntheticConfig: non-positive slots");
  }
  if (velocity <= 0.0) {
    return Status::InvalidArgument("SyntheticConfig: non-positive velocity");
  }
  if (task_duration < 0.0 || worker_duration < 0.0) {
    return Status::InvalidArgument("SyntheticConfig: negative duration");
  }
  auto check_side = [](const SideDistribution& side) {
    return side.temporal_sigma >= 0.0 && side.spatial_cov >= 0.0;
  };
  if (!check_side(workers) || !check_side(tasks)) {
    return Status::InvalidArgument("SyntheticConfig: negative spread");
  }
  return Status::OK();
}

CityProfile BeijingProfile() {
  CityProfile profile;
  profile.name = "beijing";
  profile.grid_x = 30;
  profile.grid_y = 20;
  profile.workers_per_day = 50637.0;  // Table 3 |W|.
  profile.tasks_per_day = 54129.0;    // Table 3 |R|: demand exceeds supply.
  profile.rush_hour_sharpness = 1.3;
  profile.supply_surplus = 1.0;
  profile.seed = 2016;
  return profile;
}

CityProfile HangzhouProfile() {
  CityProfile profile;
  profile.name = "hangzhou";
  profile.grid_x = 30;
  profile.grid_y = 20;
  profile.workers_per_day = 49324.0;  // Table 3 |W|.
  profile.tasks_per_day = 48507.0;    // Table 3 |R|: supply exceeds demand.
  profile.rush_hour_sharpness = 0.9;
  profile.weekend_demand_factor = 1.1;  // Tourist city: busier weekends.
  profile.supply_surplus = 1.05;
  profile.seed = 2017;
  return profile;
}

}  // namespace ftoa
