// CityTraceGenerator: the stand-in for the paper's proprietary Didi
// taxi-calling traces (Table 3). It synthesizes a multi-week city: a
// mixture of spatial hotspots whose weights shift between morning and
// evening (residential -> CBD commute and back), a double-peaked
// time-of-day demand curve, weekday/weekend modulation, and a weather
// process (temperature + rain episodes) that boosts demand and suppresses
// supply. Workers track tasks with a smoother spatial spread and an
// earlier ramp-up. Counts are Poisson; the *same* per-day draw backs both
// the prediction history and the realized instance, so the offline
// prediction problem is exactly the one a platform faces.

#ifndef FTOA_GEN_CITY_TRACE_H_
#define FTOA_GEN_CITY_TRACE_H_

#include <vector>

#include "gen/config.h"
#include "model/instance.h"
#include "prediction/dataset.h"
#include "spatial/spacetime.h"
#include "util/result.h"

namespace ftoa {

/// Deterministic multi-day city simulator.
class CityTraceGenerator {
 public:
  explicit CityTraceGenerator(CityProfile profile);

  const CityProfile& profile() const { return profile_; }

  /// The (slot x cell) type space of one day of this city.
  SpacetimeSpec DaySpacetime() const;

  /// Expected counts (Poisson intensities) per (slot, cell) for one day,
  /// row-major [slot * num_cells + cell].
  std::vector<double> Intensity(DemandSide side, int day) const;

  /// Realized counts for one day (deterministic in (seed, day, side)).
  std::vector<int> SampleDayCounts(DemandSide side, int day) const;

  /// Full history over profile().history_days for predictor training and
  /// evaluation; includes weather and day-of-week covariates.
  DemandDataset GenerateHistory() const;

  /// The realized FTOA instance of one day, consistent with the counts the
  /// history reports for that day.
  Result<Instance> GenerateInstanceForDay(int day) const;

  /// Weather at (day, slot) (precomputed at construction).
  const WeatherSample& WeatherAt(int day, int slot) const;

 private:
  struct Hotspot {
    double cx;        ///< Center, fraction of grid width.
    double cy;        ///< Center, fraction of grid height.
    double sigma;     ///< Spread, fraction of min(grid) dimension.
    double base;      ///< Base weight.
    double morning;   ///< Additional weight at the morning peak.
    double evening;   ///< Additional weight at the evening peak.
  };

  double TimeCurve(DemandSide side, int dow, int slot) const;
  double SpatialDensity(DemandSide side, int slot, int cell) const;

  CityProfile profile_;
  int num_cells_;
  std::vector<Hotspot> hotspots_;
  std::vector<WeatherSample> weather_;  // [day * slots_per_day + slot]
};

}  // namespace ftoa

#endif  // FTOA_GEN_CITY_TRACE_H_
