#include "gen/synthetic.h"

#include <cmath>
#include <vector>

#include "util/distributions.h"
#include "util/rng.h"

namespace ftoa {

namespace {

/// Samples (location, start) pairs for one market side.
template <typename ObjectT>
std::vector<ObjectT> SampleSide(int count, const SideDistribution& side,
                                const SyntheticConfig& config,
                                double duration, Rng* rng) {
  const double width = static_cast<double>(config.grid_x);
  const double height = static_cast<double>(config.grid_y);
  const double horizon = static_cast<double>(config.num_slots);

  const TruncatedNormal temporal(side.temporal_mu * horizon,
                                 side.temporal_sigma * horizon, 0.0,
                                 horizon);
  // Table 4's spatial covariance is "value times diag(x, y)": the variance
  // along each axis is cov * dimension.
  const TruncatedNormal2d spatial(
      side.spatial_mean * width, side.spatial_mean * height,
      std::sqrt(side.spatial_cov * width), std::sqrt(side.spatial_cov * height),
      width, height);

  std::vector<ObjectT> objects(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    ObjectT& object = objects[static_cast<size_t>(i)];
    spatial.Sample(*rng, &object.location.x, &object.location.y);
    object.start = temporal.Sample(*rng);
    object.duration = duration;
  }
  return objects;
}

}  // namespace

Result<Instance> GenerateSyntheticInstance(const SyntheticConfig& config) {
  FTOA_RETURN_NOT_OK(config.Validate());
  Rng rng(config.seed);
  Rng worker_rng = rng.Fork(1);
  Rng task_rng = rng.Fork(2);

  std::vector<Worker> workers = SampleSide<Worker>(
      config.num_workers, config.workers, config, config.worker_duration,
      &worker_rng);
  std::vector<Task> tasks = SampleSide<Task>(
      config.num_tasks, config.tasks, config, config.task_duration,
      &task_rng);

  const GridSpec grid(static_cast<double>(config.grid_x),
                      static_cast<double>(config.grid_y), config.grid_x,
                      config.grid_y);
  const SlotSpec slots(static_cast<double>(config.num_slots),
                       config.num_slots);
  return Instance(SpacetimeSpec(slots, grid), config.velocity,
                  std::move(workers), std::move(tasks));
}

Result<PredictionMatrix> GenerateSyntheticPrediction(
    const SyntheticConfig& config) {
  SyntheticConfig replicate = config;
  // An independent draw from the same distributions: what a prediction
  // model fitted on (infinite) history would sample for "tomorrow".
  replicate.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  FTOA_ASSIGN_OR_RETURN(Instance shadow,
                        GenerateSyntheticInstance(replicate));
  return PredictionMatrix::FromInstance(shadow);
}

Result<PredictionMatrix> GenerateSyntheticExpectedPrediction(
    const SyntheticConfig& config, int oversample) {
  if (oversample <= 0) {
    return Status::InvalidArgument(
        "GenerateSyntheticExpectedPrediction: oversample must be positive");
  }
  std::vector<double> workers;
  std::vector<double> tasks;
  SpacetimeSpec spacetime;
  for (int k = 0; k < oversample; ++k) {
    SyntheticConfig replicate = config;
    replicate.seed =
        config.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(k + 1));
    FTOA_ASSIGN_OR_RETURN(Instance shadow,
                          GenerateSyntheticInstance(replicate));
    const auto [worker_counts, task_counts] = shadow.CountsPerType();
    if (workers.empty()) {
      spacetime = shadow.spacetime();
      workers.assign(worker_counts.size(), 0.0);
      tasks.assign(task_counts.size(), 0.0);
    }
    for (size_t t = 0; t < worker_counts.size(); ++t) {
      workers[t] += worker_counts[t];
      tasks[t] += task_counts[t];
    }
  }
  const double inv = 1.0 / oversample;
  for (double& v : workers) v *= inv;
  for (double& v : tasks) v *= inv;
  return PredictionMatrix::FromIntensities(spacetime, workers, tasks);
}

}  // namespace ftoa
