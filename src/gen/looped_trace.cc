#include "gen/looped_trace.h"

#include <algorithm>
#include <utility>

namespace ftoa {

namespace {

CityProfile ScaledProfile(CityProfile profile, double scale) {
  if (scale > 0.0 && scale != 1.0) {
    profile.workers_per_day *= scale;
    profile.tasks_per_day *= scale;
  }
  return profile;
}

}  // namespace

LoopedTraceSource::LoopedTraceSource(CityProfile profile)
    : LoopedTraceSource(std::move(profile), Options()) {}

LoopedTraceSource::LoopedTraceSource(CityProfile profile, Options options)
    : generator_(ScaledProfile(std::move(profile), options.scale)) {
  const int history = generator_.profile().history_days;
  loop_days_ = options.loop_days <= 0 ? history
                                      : std::min(options.loop_days, history);
  loop_days_ = std::max(1, loop_days_);
}

double LoopedTraceSource::day_horizon() const {
  return static_cast<double>(generator_.profile().slots_per_day);
}

Result<std::vector<StreamArrival>> LoopedTraceSource::ArrivalsForDay(
    int64_t day) const {
  if (day < 0) {
    return Status::OutOfRange("LoopedTraceSource: negative stream day");
  }
  const int source_day = static_cast<int>(day % loop_days_);
  FTOA_ASSIGN_OR_RETURN(const Instance instance,
                        generator_.GenerateInstanceForDay(source_day));
  const double offset = static_cast<double>(day) * day_horizon();

  std::vector<StreamArrival> arrivals;
  arrivals.reserve(instance.num_workers() + instance.num_tasks());
  for (const Worker& w : instance.workers()) {
    arrivals.push_back(StreamArrival{ObjectKind::kWorker, offset + w.start,
                                     w.location, w.duration, w.id, day});
  }
  for (const Task& r : instance.tasks()) {
    arrivals.push_back(StreamArrival{ObjectKind::kTask, offset + r.start,
                                     r.location, r.duration, r.id, day});
  }
  // The session arrival contract: nondecreasing time, workers before tasks
  // at equal times, lower ids first (BuildArrivalStream's order).
  std::sort(arrivals.begin(), arrivals.end(),
            [](const StreamArrival& a, const StreamArrival& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.kind != b.kind) return a.kind == ObjectKind::kWorker;
              return a.source_id < b.source_id;
            });
  return arrivals;
}

Result<Instance> LoopedTraceSource::FiniteInstance(int num_days) const {
  if (num_days < 1) {
    return Status::InvalidArgument(
        "LoopedTraceSource::FiniteInstance: num_days must be >= 1");
  }
  const CityProfile& profile = generator_.profile();
  std::vector<Worker> workers;
  std::vector<Task> tasks;
  for (int day = 0; day < num_days; ++day) {
    FTOA_ASSIGN_OR_RETURN(const std::vector<StreamArrival> arrivals,
                          ArrivalsForDay(day));
    for (const StreamArrival& arrival : arrivals) {
      if (arrival.kind == ObjectKind::kWorker) {
        workers.push_back(Worker{-1, arrival.location, arrival.time,
                                 arrival.duration});
      } else {
        tasks.push_back(Task{-1, arrival.location, arrival.time,
                             arrival.duration});
      }
    }
  }
  const SpacetimeSpec day_spec = DaySpacetime();
  const SlotSpec slots(day_horizon() * num_days,
                       profile.slots_per_day * num_days);
  return Instance(SpacetimeSpec(slots, day_spec.grid()), profile.velocity,
                  std::move(workers), std::move(tasks));
}

}  // namespace ftoa
