// Workload configuration structs mirroring the paper's Table 4 (synthetic)
// and Table 3 (real-data profiles, substituted by the city-trace
// generator — see DESIGN.md Section 3).

#ifndef FTOA_GEN_CONFIG_H_
#define FTOA_GEN_CONFIG_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace ftoa {

/// Temporal/spatial distribution parameters of one market side, expressed
/// as fractions exactly like Table 4: the temporal distribution is
/// N(mu * horizon, (sigma * horizon)^2) truncated to the horizon, and the
/// spatial distribution is N(mean * (X, Y), diag(cov * X, cov * Y))
/// truncated to the region (the paper's covariance "value times the matrix
/// diag(x, y)").
struct SideDistribution {
  double temporal_mu = 0.5;
  double temporal_sigma = 0.5;
  double spatial_mean = 0.5;
  double spatial_cov = 0.5;
};

/// Full synthetic-workload configuration (Table 4 defaults in bold there).
struct SyntheticConfig {
  int num_workers = 20000;   ///< |W|.
  int num_tasks = 20000;     ///< |R|.
  int grid_x = 50;           ///< Cells along X (cells are 1x1 units).
  int grid_y = 50;           ///< Cells along Y.
  int num_slots = 48;        ///< t; one slot is one time unit (15 min).
  double velocity = 5.0;     ///< Cells per slot (~40 km/h in the paper).
  double task_duration = 2.0;   ///< Dr, in slots.
  double worker_duration = 3.0; ///< Dw, in slots.

  /// Workers are fixed at 0.25-fraction means per the paper's Section 6.2
  /// discussion ("the workers' mu = 0.25", spatial mean (0.25x, 0.25y)).
  SideDistribution workers{0.25, 0.25, 0.25, 0.25};
  /// Task-side defaults are the bold entries of Table 4.
  SideDistribution tasks{0.5, 0.5, 0.5, 0.5};

  uint64_t seed = 42;

  /// Sanity-checks field ranges.
  Status Validate() const;
};

/// City profile for the trace generator substituting the Didi datasets.
struct CityProfile {
  std::string name = "beijing";
  int grid_x = 30;            ///< Paper real data: 20 x 30 = 600 grids.
  int grid_y = 20;
  int slots_per_day = 12;     ///< t = 12 as in Table 3 (2-hour slots).
  int history_days = 28;      ///< Training+test horizon.
  /// Mean daily object counts (the paper's Table 3 scale; benches shrink
  /// both counts and grid together to keep per-type density realistic).
  double workers_per_day = 48000.0;
  double tasks_per_day = 52000.0;
  double velocity = 2.0;           ///< Cells per slot.
  double task_duration = 1.0;      ///< Dr in slots (paper sweeps 0.5-1.5).
  double worker_duration = 2.0;    ///< Dw in slots (paper: 2 hours).
  uint64_t seed = 2016;

  /// Supply/demand shape knobs (differ per city in the built-in profiles).
  double weekend_demand_factor = 0.8;
  double rush_hour_sharpness = 1.0;
  double supply_surplus = 1.0;  ///< >1: more workers than tasks overall.

  /// Hours by which the worker (supply) spatial distribution lags the task
  /// (demand) distribution: idle drivers drift toward where demand *was*,
  /// which is exactly the mismatch prediction-guided dispatching exploits.
  double worker_spatial_lag_hours = 2.0;
};

/// Built-in profiles approximating Table 3's two cities.
CityProfile BeijingProfile();
CityProfile HangzhouProfile();

}  // namespace ftoa

#endif  // FTOA_GEN_CONFIG_H_
