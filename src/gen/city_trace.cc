#include "gen/city_trace.h"

#include <cmath>

#include "util/rng.h"

namespace ftoa {

namespace {

/// Gaussian bump value at squared distance `d2` with spread `sigma`.
inline double Bump(double d2, double sigma) {
  return std::exp(-d2 / (2.0 * sigma * sigma));
}

}  // namespace

CityTraceGenerator::CityTraceGenerator(CityProfile profile)
    : profile_(std::move(profile)),
      num_cells_(profile_.grid_x * profile_.grid_y) {
  // Hotspot geometry is derived deterministically from the city seed so the
  // two built-in profiles produce genuinely different cities.
  Rng rng(profile_.seed);
  const double jitter = 0.06;
  auto jittered = [&](double v) {
    return v + rng.NextDouble(-jitter, jitter);
  };
  // CBD: strong evening outflow (workers finishing, calling taxis).
  hotspots_.push_back(Hotspot{jittered(0.70), jittered(0.60), 0.07, 0.10,
                              0.3, 2.6});
  // Residential belt: strong morning outflow.
  hotspots_.push_back(Hotspot{jittered(0.22), jittered(0.28), 0.09, 0.10,
                              2.4, 0.3});
  hotspots_.push_back(Hotspot{jittered(0.25), jittered(0.75), 0.08, 0.08,
                              2.0, 0.25});
  // Airport: steady with a mild evening bias.
  hotspots_.push_back(Hotspot{jittered(0.88), jittered(0.15), 0.05, 0.08,
                              0.2, 0.8});
  // Entertainment district: evening/night.
  hotspots_.push_back(Hotspot{jittered(0.60), jittered(0.85), 0.06, 0.06,
                              0.1, 1.6});

  // Weather: daily temperature sinusoid + seasonal drift, and a two-state
  // Markov rain process at slot granularity.
  const int slots = profile_.slots_per_day;
  weather_.resize(static_cast<size_t>(profile_.history_days) * slots);
  Rng weather_rng = rng.Fork(0xfeed);
  bool raining = false;
  for (int day = 0; day < profile_.history_days; ++day) {
    const double seasonal =
        18.0 + 6.0 * std::sin(2.0 * M_PI * day / 60.0) +
        weather_rng.NextGaussian(0.0, 1.5);
    for (int slot = 0; slot < slots; ++slot) {
      const double hour = 24.0 * slot / slots;
      WeatherSample sample;
      sample.temperature = seasonal +
                           5.0 * std::sin(2.0 * M_PI * (hour - 9.0) / 24.0) +
                           weather_rng.NextGaussian(0.0, 0.5);
      raining = raining ? weather_rng.NextBool(0.75)
                        : weather_rng.NextBool(0.03);
      sample.precipitation =
          raining ? weather_rng.NextExponential(0.5) : 0.0;
      weather_[static_cast<size_t>(day) * slots + slot] = sample;
    }
  }
}

SpacetimeSpec CityTraceGenerator::DaySpacetime() const {
  const GridSpec grid(static_cast<double>(profile_.grid_x),
                      static_cast<double>(profile_.grid_y), profile_.grid_x,
                      profile_.grid_y);
  const SlotSpec slots(static_cast<double>(profile_.slots_per_day),
                       profile_.slots_per_day);
  return SpacetimeSpec(slots, grid);
}

const WeatherSample& CityTraceGenerator::WeatherAt(int day, int slot) const {
  return weather_[static_cast<size_t>(day) * profile_.slots_per_day + slot];
}

double CityTraceGenerator::TimeCurve(DemandSide side, int dow,
                                     int slot) const {
  const double hour = 24.0 * slot / profile_.slots_per_day;
  const bool weekend = dow >= 5;
  // Workers ramp up slightly before demand does.
  const double shift = side == DemandSide::kWorkers ? 0.75 : 0.0;
  const double sharp = profile_.rush_hour_sharpness * (weekend ? 0.5 : 1.0);
  const double morning = sharp * Bump((hour + shift - 8.0) *
                                      (hour + shift - 8.0), 1.6);
  const double evening = sharp * Bump((hour + shift - 18.5) *
                                      (hour + shift - 18.5), 2.0);
  const double midday = 0.35 * Bump((hour - 13.0) * (hour - 13.0), 3.0);
  const double night = 0.08 + 0.12 * Bump((hour - 22.5) * (hour - 22.5), 2.0);
  double curve = night + midday + morning + evening;
  if (weekend) {
    curve = (curve + 0.25) * profile_.weekend_demand_factor;
  }
  return curve;
}

double CityTraceGenerator::SpatialDensity(DemandSide side, int slot,
                                          int cell) const {
  double hour = 24.0 * slot / profile_.slots_per_day;
  // Supply follows demand with a lag: drivers drift toward where tasks
  // *were*, so at any instant the two spatial distributions are offset.
  if (side == DemandSide::kWorkers) {
    hour -= profile_.worker_spatial_lag_hours;
    if (hour < 0.0) hour += 24.0;
  }
  const double morning_phase = Bump((hour - 8.0) * (hour - 8.0), 2.0);
  const double evening_phase = Bump((hour - 18.5) * (hour - 18.5), 2.5);
  const int cx = cell % profile_.grid_x;
  const int cy = cell / profile_.grid_x;
  const double fx = (cx + 0.5) / profile_.grid_x;
  const double fy = (cy + 0.5) / profile_.grid_y;
  // Workers cruise with a wider spread than point demand.
  const double sigma_scale = side == DemandSide::kWorkers ? 1.6 : 1.0;
  double density = 0.006;  // Uniform floor: demand exists everywhere.
  for (const Hotspot& h : hotspots_) {
    const double dx = fx - h.cx;
    const double dy = fy - h.cy;
    // Demand peaks where trips *originate*; idle supply accumulates where
    // the previous trips *ended* — the morning residential->CBD flow parks
    // taxis at the CBD while fresh demand is still residential, and the
    // evening flow does the reverse. Swapping the phase weights for the
    // worker side reproduces this displacement, the core reason
    // anticipatory dispatching beats wait-in-place on real platforms.
    const double weight =
        side == DemandSide::kWorkers
            ? h.base + h.evening * morning_phase + h.morning * evening_phase
            : h.base + h.morning * morning_phase + h.evening * evening_phase;
    density += weight * Bump(dx * dx + dy * dy, h.sigma * sigma_scale);
  }
  return density;
}

std::vector<double> CityTraceGenerator::Intensity(DemandSide side,
                                                  int day) const {
  const int slots = profile_.slots_per_day;
  const int dow = day % 7;
  std::vector<double> intensity(static_cast<size_t>(slots) * num_cells_,
                                0.0);

  // Normalize the time curve so that the configured daily total is hit in
  // expectation on a dry weekday.
  double curve_total = 0.0;
  for (int slot = 0; slot < slots; ++slot) {
    curve_total += TimeCurve(side, /*dow=*/1, slot);
  }
  const double daily_total =
      (side == DemandSide::kWorkers
           ? profile_.workers_per_day * profile_.supply_surplus
           : profile_.tasks_per_day);

  for (int slot = 0; slot < slots; ++slot) {
    // Spatial mixture normalized per slot.
    double density_total = 0.0;
    for (int cell = 0; cell < num_cells_; ++cell) {
      density_total += SpatialDensity(side, slot, cell);
    }
    const WeatherSample& weather = WeatherAt(day, slot);
    double weather_factor = 1.0;
    if (weather.precipitation > 0.1) {
      weather_factor = side == DemandSide::kTasks ? 1.25 : 0.85;
    }
    const double slot_total = daily_total *
                              TimeCurve(side, dow, slot) / curve_total *
                              weather_factor;
    for (int cell = 0; cell < num_cells_; ++cell) {
      intensity[static_cast<size_t>(slot) * num_cells_ + cell] =
          slot_total * SpatialDensity(side, slot, cell) / density_total;
    }
  }
  return intensity;
}

std::vector<int> CityTraceGenerator::SampleDayCounts(DemandSide side,
                                                     int day) const {
  const std::vector<double> intensity = Intensity(side, day);
  // Independent deterministic stream per (seed, day, side).
  Rng rng(profile_.seed ^ (0x517cc1b727220a95ULL * (day + 1)) ^
          (side == DemandSide::kWorkers ? 0x2545f4914f6cdd1dULL : 0));
  std::vector<int> counts(intensity.size(), 0);
  for (size_t i = 0; i < intensity.size(); ++i) {
    counts[i] = static_cast<int>(rng.NextPoisson(intensity[i]));
  }
  return counts;
}

DemandDataset CityTraceGenerator::GenerateHistory() const {
  DemandDataset data(profile_.history_days, profile_.slots_per_day,
                     num_cells_);
  for (int day = 0; day < profile_.history_days; ++day) {
    data.set_day_of_week(day, day % 7);
    const std::vector<int> workers =
        SampleDayCounts(DemandSide::kWorkers, day);
    const std::vector<int> tasks = SampleDayCounts(DemandSide::kTasks, day);
    for (int slot = 0; slot < profile_.slots_per_day; ++slot) {
      data.set_weather(day, slot, WeatherAt(day, slot));
      for (int cell = 0; cell < num_cells_; ++cell) {
        const size_t k = static_cast<size_t>(slot) * num_cells_ + cell;
        data.set_workers(day, slot, cell, workers[k]);
        data.set_tasks(day, slot, cell, tasks[k]);
      }
    }
  }
  return data;
}

Result<Instance> CityTraceGenerator::GenerateInstanceForDay(int day) const {
  if (day < 0 || day >= profile_.history_days) {
    return Status::OutOfRange("CityTraceGenerator: day outside the history");
  }
  const SpacetimeSpec spacetime = DaySpacetime();
  const GridSpec& grid = spacetime.grid();

  const std::vector<int> worker_counts =
      SampleDayCounts(DemandSide::kWorkers, day);
  const std::vector<int> task_counts =
      SampleDayCounts(DemandSide::kTasks, day);

  // Object placement within (slot, cell) is uniform; the stream is seeded
  // independently of the count draw so counts stay consistent with the
  // history.
  Rng rng(profile_.seed ^ 0x94d049bb133111ebULL ^
          (0x9e3779b97f4a7c15ULL * (day + 1)));

  std::vector<Worker> workers;
  std::vector<Task> tasks;
  for (int slot = 0; slot < profile_.slots_per_day; ++slot) {
    for (int cell = 0; cell < num_cells_; ++cell) {
      const size_t k = static_cast<size_t>(slot) * num_cells_ + cell;
      const int cx = cell % profile_.grid_x;
      const int cy = cell / profile_.grid_x;
      auto sample_point = [&]() {
        return Point{(cx + rng.NextDouble()) * grid.cell_width(),
                     (cy + rng.NextDouble()) * grid.cell_height()};
      };
      auto sample_time = [&]() {
        return (slot + rng.NextDouble());
      };
      for (int i = 0; i < worker_counts[k]; ++i) {
        Worker w;
        w.location = sample_point();
        w.start = sample_time();
        w.duration = profile_.worker_duration;
        workers.push_back(w);
      }
      for (int i = 0; i < task_counts[k]; ++i) {
        Task r;
        r.location = sample_point();
        r.start = sample_time();
        r.duration = profile_.task_duration;
        tasks.push_back(r);
      }
    }
  }
  return Instance(spacetime, profile_.velocity, std::move(workers),
                  std::move(tasks));
}

}  // namespace ftoa
