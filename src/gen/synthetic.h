// Synthetic workload generation following the paper's Section 6.1: start
// times from truncated normal temporal distributions and locations from
// truncated axis-aligned bivariate normals, per market side, with the
// Table 4 parameterization.

#ifndef FTOA_GEN_SYNTHETIC_H_
#define FTOA_GEN_SYNTHETIC_H_

#include "core/prediction_matrix.h"
#include "gen/config.h"
#include "model/instance.h"
#include "util/result.h"

namespace ftoa {

/// Generates a full FTOA instance from `config` (deterministic in
/// config.seed).
Result<Instance> GenerateSyntheticInstance(const SyntheticConfig& config);

/// Generates the prediction a historical model would supply for `config`:
/// the realized per-type counts of an *independent* replicate drawn from the
/// same distributions with a derived seed. This models a well-calibrated
/// but imperfect offline prediction — sampling noise remains, systematic
/// bias does not.
Result<PredictionMatrix> GenerateSyntheticPrediction(
    const SyntheticConfig& config);

/// Generates the *expected* per-type counts of `config`'s distributions,
/// estimated by a low-variance oversampled draw (`oversample` independent
/// replicates averaged, deterministic in config.seed). This is the i.i.d.
/// input model's assumption that the spatiotemporal distribution itself is
/// known as prior (Definition 5), and the default prediction of the
/// synthetic benchmarks.
Result<PredictionMatrix> GenerateSyntheticExpectedPrediction(
    const SyntheticConfig& config, int oversample = 8);

}  // namespace ftoa

#endif  // FTOA_GEN_SYNTHETIC_H_
